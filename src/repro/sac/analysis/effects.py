"""Interprocedural memory-effects summaries (the substrate of ``SAC5xx``).

The reuse/in-place-update pass needs to answer two questions about a
call ``f(a, iv, ...)`` without re-reading ``f``'s body at every site:

1. **How does ``f`` read its array arguments?**  Per parameter the
   summary records :class:`ParamRead` entries with a :class:`ReadKind`:
   ``POINT`` (selected at exactly the value of one index-vector
   parameter), ``OFFSET`` (selected at an affine displacement of one
   index-vector parameter — the stencil read ``u[iv + ov - 1]``), or
   ``WHOLE`` (read in any other way).  The lattice is ordered
   ``NONE < POINT < OFFSET < WHOLE``; joins go up.
2. **May the return value alias an argument?**  ``may_return_params``
   holds indices of parameters the returned value can share a buffer
   with — directly, through a selection (the NumPy backend emits views
   for those), or transitively through another call.  A function whose
   returns are all fresh WITH-loop results has an empty set; one that
   can fall through a zero-trip loop and hand its argument back
   (``SetupPeriodicBorder``) does not.

Summaries are computed for the whole program at once by a fixpoint over
the (possibly recursive, possibly overloaded) call graph: everything
starts optimistic (no reads, no aliasing) and is re-derived until
stable; overloads of one name are joined at call sites, mirroring the
overload treatment in :class:`~repro.sac.analysis.shapes.ShapeAnalyzer`.

Everything here is *may* information rounded in the direction that keeps
the reuse pass sound: an unclassifiable read is ``WHOLE``, a call to an
unknown function may return any of its arguments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional

from ..ast_nodes import (
    Assign,
    Block,
    Call,
    Dot,
    Expr,
    FoldOp,
    FunDef,
    GenarrayOp,
    Generator,
    ModarrayOp,
    Program,
    Return,
    Select,
    Stmt,
    Var,
    WithLoop,
)
from ..ast_visit import walk_exprs
from ..builtins import is_builtin
from ..sactypes import BaseType, ShapeKind

__all__ = [
    "ReadKind",
    "VarRead",
    "ParamRead",
    "FunctionSummary",
    "EffectsAnalysis",
    "classify_index",
    "alias_sources",
]


class ReadKind(enum.IntEnum):
    """How an array's data is read; ordered so ``max`` is the join."""

    NONE = 0     #: not read at all (or only structurally: shape/dim)
    POINT = 1    #: selected at exactly an index variable's value
    OFFSET = 2   #: selected at an affine displacement of an index var
    WHOLE = 3    #: read in an unclassifiable way (passed whole, ...)

    def join(self, other: "ReadKind") -> "ReadKind":
        return self if self >= other else other


@dataclass(frozen=True)
class VarRead:
    """One classified data read of a named value inside an expression.

    ``index_var`` names the index variable the read is relative to for
    ``POINT``/``OFFSET`` kinds, ``None`` for ``WHOLE``.
    """

    name: str
    kind: ReadKind
    index_var: Optional[str] = None


@dataclass(frozen=True)
class ParamRead:
    """A :class:`VarRead` lifted to parameter positions."""

    param: int
    kind: ReadKind
    index_param: Optional[int] = None


@dataclass(frozen=True)
class FunctionSummary:
    """Memory effects of one function, as seen by its callers."""

    name: str
    arity: int
    #: Classified data reads of parameters.
    reads: frozenset[ParamRead] = frozenset()
    #: Parameter indices the return value may share a buffer with.
    may_return_params: frozenset[int] = frozenset()

    def read_kind(self, param: int) -> ReadKind:
        """Join of every recorded read kind of one parameter."""
        kind = ReadKind.NONE
        for r in self.reads:
            if r.param == param:
                kind = kind.join(r.kind)
        return kind

    @property
    def returns_fresh(self) -> bool:
        """True when the return value provably owns its buffer."""
        return not self.may_return_params


#: Builtins that inspect structure only — their argument's *data* is
#: never read, so a bare argument contributes no effect.
_STRUCTURAL_BUILTINS = frozenset({"shape", "dim"})


def classify_index(index: Expr, candidates: frozenset[str]
                   ) -> tuple[ReadKind, Optional[str]]:
    """Classify a selection index against candidate index variables.

    Returns ``(POINT, var)`` when the index is exactly one candidate
    variable, ``(OFFSET, var)`` when it is an expression mentioning
    exactly one candidate (an affine or loop-invariant displacement of
    it — every non-candidate in a WITH-loop body is loop-invariant),
    and ``(WHOLE, None)`` otherwise.
    """
    if isinstance(index, Var) and index.name in candidates:
        return ReadKind.POINT, index.name
    mentioned = {
        e.name for e in walk_exprs(index)
        if isinstance(e, Var) and e.name in candidates
    }
    if len(mentioned) == 1:
        return ReadKind.OFFSET, mentioned.pop()
    return ReadKind.WHOLE, None


class EffectsAnalysis:
    """Whole-program effect summaries, solved to a fixpoint."""

    def __init__(self, program: Program):
        self.program = program
        self.functions: dict[str, list[FunDef]] = {}
        for f in program.functions:
            self.functions.setdefault(f.name, []).append(f)
        self.summaries: dict[int, FunctionSummary] = {}
        self._solve()

    # -- public access -----------------------------------------------------

    def summary_of(self, fun: FunDef) -> FunctionSummary:
        return self.summaries[id(fun)]

    def call_summaries(self, name: str, arity: int
                       ) -> list[FunctionSummary]:
        """Summaries of every overload a call could resolve to."""
        return [self.summaries[id(f)]
                for f in self.functions.get(name, ())
                if f.arity == arity]

    def expr_reads(self, expr: Expr,
                   candidates: frozenset[str]) -> frozenset[VarRead]:
        """Every data read of a named value inside ``expr``.

        ``candidates`` fixes the index variables reads are classified
        against (a WITH-loop's generator variable for body-level
        queries, index-vector parameters for summaries).  Calls are
        translated through callee summaries, so a stencil helper's
        ``OFFSET`` reads surface at the call site.
        """
        out: set[VarRead] = set()
        self._expr_reads(expr, candidates, out)
        return frozenset(out)

    def call_may_return_args(self, call: Call) -> frozenset[str]:
        """Names of ``Var`` arguments the call's result may alias."""
        if is_builtin(call.name):
            # Every builtin materializes a fresh result.
            return frozenset()
        summaries = self.call_summaries(call.name, len(call.args))
        if not summaries:
            return frozenset(
                a.name for a in call.args if isinstance(a, Var))
        out: set[str] = set()
        for s in summaries:
            for i in s.may_return_params:
                if i < len(call.args):
                    out |= alias_sources(call.args[i], self)
        return frozenset(out)

    # -- fixpoint ----------------------------------------------------------

    def _solve(self) -> None:
        funs = list(self.program.functions)
        for f in funs:
            self.summaries[id(f)] = FunctionSummary(f.name, f.arity)
        height = sum(4 * (f.arity + 1) for f in funs) + 8
        for _ in range(height):
            changed = False
            for f in funs:
                new = self._summarize(f)
                if new != self.summaries[id(f)]:
                    self.summaries[id(f)] = new
                    changed = True
            if not changed:
                return
        # Unreachable (finite lattice, monotone transfer functions),
        # but stay sound if it ever triggers: assume the worst.
        for f in funs:
            everything = frozenset(range(f.arity))
            self.summaries[id(f)] = FunctionSummary(
                f.name, f.arity,
                reads=frozenset(ParamRead(i, ReadKind.WHOLE)
                                for i in everything),
                may_return_params=everything)

    # -- per-function derivation -------------------------------------------

    def _summarize(self, fun: FunDef) -> FunctionSummary:
        param_pos = {p.name: i for i, p in enumerate(fun.params)}
        candidates = frozenset(
            p.name for p in fun.params
            if p.type.base is BaseType.INT
            and p.type.kind is not ShapeKind.SCALAR)
        reads: set[ParamRead] = set()
        for expr in _statement_exprs(fun.body):
            for r in self.expr_reads(expr, candidates):
                if r.name not in param_pos:
                    continue
                if r.kind is ReadKind.NONE:
                    continue
                if r.index_var is not None and r.index_var in param_pos:
                    reads.add(ParamRead(param_pos[r.name], r.kind,
                                        param_pos[r.index_var]))
                else:
                    # WHOLE, or relative to a loop-local index variable
                    # — from the caller's view the read sweeps the
                    # whole index space.
                    reads.add(ParamRead(param_pos[r.name],
                                        ReadKind.WHOLE))

        local_sources = self._local_alias_sources(fun)
        may_return: set[int] = set()
        for value in _return_values(fun.body):
            for name in alias_sources(value, self, local_sources):
                if name in param_pos:
                    may_return.add(param_pos[name])
        return FunctionSummary(fun.name, fun.arity,
                               frozenset(reads), frozenset(may_return))

    def _expr_reads(self, expr: Expr, candidates: frozenset[str],
                    out: set[VarRead]) -> None:
        if isinstance(expr, Var):
            # A bare name in a data position: whole read.  (Scalar
            # variables land here too; they never alias an array, so
            # the imprecision is free.)
            out.add(VarRead(expr.name, ReadKind.WHOLE))
            return
        if isinstance(expr, Select):
            if isinstance(expr.array, Var):
                kind, var = classify_index(expr.index, candidates)
                out.add(VarRead(expr.array.name, kind, var))
            else:
                self._expr_reads(expr.array, candidates, out)
            self._expr_reads(expr.index, candidates, out)
            return
        if isinstance(expr, Call):
            self._call_reads(expr, candidates, out)
            return
        if isinstance(expr, WithLoop):
            gen = expr.generator
            for bound in (gen.lower, gen.upper, gen.step, gen.width):
                if bound is not None and not isinstance(bound, Dot):
                    self._expr_reads(bound, candidates, out)
            op = expr.operation
            if isinstance(op, GenarrayOp):
                self._expr_reads(op.shape, candidates, out)
            elif isinstance(op, ModarrayOp):
                self._expr_reads(op.array, candidates, out)
            elif isinstance(op, FoldOp):
                self._expr_reads(op.neutral, candidates, out)
            # The nested generator variable is deliberately NOT added
            # to the candidates: reads relative to it sweep the nested
            # loop's range, which classifies as an OFFSET of whichever
            # outer candidate also appears (u[iv + ov - 1]) or as
            # WHOLE when none does.
            self._expr_reads(op.body, candidates, out)
            return
        if isinstance(expr, (Generator, Dot)):
            return
        for child in _child_exprs(expr):
            self._expr_reads(child, candidates, out)

    def _call_reads(self, call: Call, candidates: frozenset[str],
                    out: set[VarRead]) -> None:
        if is_builtin(call.name):
            structural = call.name in _STRUCTURAL_BUILTINS
            for a in call.args:
                if isinstance(a, Var):
                    if not structural:
                        out.add(VarRead(a.name, ReadKind.WHOLE))
                else:
                    self._expr_reads(a, candidates, out)
            return
        summaries = self.call_summaries(call.name, len(call.args))
        for i, a in enumerate(call.args):
            if not isinstance(a, Var):
                self._expr_reads(a, candidates, out)
                continue
            if not summaries:
                out.add(VarRead(a.name, ReadKind.WHOLE))
                continue
            for s in summaries:
                for r in s.reads:
                    if r.param != i:
                        continue
                    out.add(self._translate_read(r, call, a.name,
                                                 candidates))

    def _translate_read(self, r: ParamRead, call: Call, name: str,
                        candidates: frozenset[str]) -> VarRead:
        """Map a callee's read of its own parameter into caller terms."""
        if r.kind is ReadKind.WHOLE or r.index_param is None \
                or r.index_param >= len(call.args):
            return VarRead(name, ReadKind.WHOLE)
        kind, var = classify_index(call.args[r.index_param], candidates)
        if kind is ReadKind.WHOLE:
            return VarRead(name, ReadKind.WHOLE)
        joined = (ReadKind.POINT
                  if r.kind is ReadKind.POINT and kind is ReadKind.POINT
                  else ReadKind.OFFSET)
        return VarRead(name, joined, var)

    def _local_alias_sources(self, fun: FunDef
                             ) -> dict[str, frozenset[str]]:
        """Flow-insensitive per-name alias-source sets, to fixpoint.

        Sound over-approximation: a name's set is the union over every
        assignment to it anywhere in the function, plus itself when it
        is a parameter.
        """
        assigns = list(_walk_assigns(fun.body))
        sources: dict[str, frozenset[str]] = {
            p.name: frozenset({p.name}) for p in fun.params
        }
        for _ in range(len(assigns) + 2):
            changed = False
            for a in assigns:
                new = alias_sources(a.value, self, sources)
                old = sources.get(a.target, frozenset())
                merged = old | new
                if merged != old:
                    sources[a.target] = merged
                    changed = True
            if not changed:
                break
        return sources


def alias_sources(expr: Expr, effects: EffectsAnalysis,
                  env: Optional[Mapping[str, frozenset[str]]] = None
                  ) -> frozenset[str]:
    """Names whose buffer the value of ``expr`` may share.

    ``env`` maps already-resolved names to their own source sets; a
    name absent from ``env`` is its own (only) source.  Fresh
    allocations — WITH-loop results, arithmetic, literals, builtin
    calls — have no sources.
    """
    environment: Mapping[str, frozenset[str]] = env or {}
    if isinstance(expr, Var):
        return environment.get(expr.name, frozenset({expr.name}))
    if isinstance(expr, Select):
        # The NumPy backend implements partial selection as a view.
        return alias_sources(expr.array, effects, environment)
    if isinstance(expr, Call):
        if is_builtin(expr.name):
            return frozenset()
        summaries = effects.call_summaries(expr.name, len(expr.args))
        if not summaries:
            out: frozenset[str] = frozenset()
            for a in expr.args:
                out |= alias_sources(a, effects, environment)
            return out
        out = frozenset()
        for s in summaries:
            for i in s.may_return_params:
                if i < len(expr.args):
                    out |= alias_sources(expr.args[i], effects,
                                         environment)
        return out
    # WITH-loop results, arithmetic, literals: freshly allocated.
    return frozenset()


# ---------------------------------------------------------------------------
# AST walking helpers.
# ---------------------------------------------------------------------------

def _child_exprs(expr: Expr) -> Iterator[Expr]:
    for v in vars(expr).values():
        if isinstance(v, Expr):
            yield v
        elif isinstance(v, tuple):
            for e in v:
                if isinstance(e, Expr):
                    yield e


def _statement_exprs(stmt: Stmt) -> Iterator[Expr]:
    """Top-level expressions of every statement under ``stmt``."""
    for v in vars(stmt).values():
        if isinstance(v, Expr):
            yield v
        elif isinstance(v, Block):
            for s in v.statements:
                yield from _statement_exprs(s)
        elif isinstance(v, Stmt):
            yield from _statement_exprs(v)
        elif isinstance(v, tuple):
            for s in v:
                if isinstance(s, Stmt):
                    yield from _statement_exprs(s)


def _walk_assigns(stmt: Stmt) -> Iterator[Assign]:
    if isinstance(stmt, Assign):
        yield stmt
        return
    for v in vars(stmt).values():
        if isinstance(v, Block):
            for s in v.statements:
                yield from _walk_assigns(s)
        elif isinstance(v, Stmt):
            yield from _walk_assigns(v)
        elif isinstance(v, tuple):
            for s in v:
                if isinstance(s, Stmt):
                    yield from _walk_assigns(s)


def _return_values(stmt: Stmt) -> Iterator[Expr]:
    if isinstance(stmt, Return):
        yield stmt.value
        return
    for v in vars(stmt).values():
        if isinstance(v, Block):
            for s in v.statements:
                yield from _return_values(s)
        elif isinstance(v, Stmt):
            yield from _return_values(v)
        elif isinstance(v, tuple):
            for s in v:
                if isinstance(s, Stmt):
                    yield from _return_values(s)
