"""WITH-loop partition checking (``SAC2xx``).

The dialect has single-generator WITH-loops, so the partition induced on
the index space is the family of step/width blocks: iteration ``iv`` is
executed iff ``lower <= iv <= upper`` (after inclusivity normalization)
and ``(iv - lower) % step < width`` on every axis.  Disjointness of the
blocks therefore reduces to ``width <= step`` per axis, and coverage of
a ``genarray`` frame to: lower bound 0, upper bound reaching the last
index, and ``step == width`` (no gaps).

Checks — all *prove-or-stay-silent* over the affine/interval facts
resolved by :mod:`repro.sac.analysis.shapes`:

* **SAC201** (error) — blocks overlap: ``width > step`` on some axis.
  The runtime would reject this too ("generator width must be in
  1..step"), but only once the loop executes; here it is caught before.
* **SAC202** (warning) — a ``genarray`` generator provably leaves part
  of the frame uncovered; those cells silently take the default value.
* **SAC203** (error) — the generator range provably escapes the frame's
  index space.
* **SAC204** (warning) — the range is provably empty.
* **SAC205** (error) — lower/upper bound vectors of different lengths.
"""

from __future__ import annotations

from typing import Callable

from .shapes import Affine, WithLoopInfo

_ONE = Affine.of(1)

__all__ = ["PartitionChecker"]


class PartitionChecker:
    """WITH-loop listener emitting SAC2xx diagnostics into ``sink``."""

    def __init__(self, sink: Callable):
        # sink(code, message, pos, function)
        self.sink = sink

    def __call__(self, info: WithLoopInfo) -> None:
        self._check_bound_lengths(info)
        self._check_overlap(info)
        self._check_range(info)
        if info.kind == "genarray":
            self._check_coverage(info)

    # -- SAC205 ------------------------------------------------------------

    def _check_bound_lengths(self, info: WithLoopInfo) -> None:
        if (info.lower_len is not None and info.upper_len is not None
                and info.lower_len != info.upper_len):
            self.sink(
                "SAC205",
                f"generator bounds have lengths {info.lower_len} and "
                f"{info.upper_len}",
                info.pos, info.function,
            )

    # -- SAC201 ------------------------------------------------------------

    def _check_overlap(self, info: WithLoopInfo) -> None:
        for ax, (s, w) in enumerate(zip(info.step, info.width)):
            if s is not None and w is not None and w > s:
                self.sink(
                    "SAC201",
                    f"generator width {w} exceeds step {s} along axis "
                    f"{ax}: iteration blocks overlap",
                    info.pos, info.function,
                )
                return

    # -- SAC203 / SAC204 ---------------------------------------------------

    def _check_range(self, info: WithLoopInfo) -> None:
        frame = info.frame
        if info.lower is None or info.upper is None:
            # Unknown component count: one uniform check against the
            # frame's per-axis '*' extent symbol.
            if info.u_lower is not None and info.u_upper is not None:
                self._check_axis(info, 0, info.u_lower, info.u_upper,
                                 frame.extent(0) if frame is not None
                                 and frame.extents is None else None)
            return
        for ax in range(min(len(info.lower), len(info.upper))):
            lo, hi = info.bound_pair(ax)
            ext = None
            if frame is not None and (frame.rank is None
                                      or ax < frame.rank):
                ext = frame.extent(ax)
            if self._check_axis(info, ax, lo, hi, ext):
                return

    def _check_axis(self, info: WithLoopInfo, ax: int,
                    lo, hi, ext) -> bool:
        """Check one axis; returns True when a finding was emitted."""
        # SAC204: lower provably above upper on this axis.
        if lo.lo is not None and hi.hi is not None \
                and lo.lo.sub(hi.hi).always_pos():
            self.sink(
                "SAC204",
                f"lower bound {lo.lo} exceeds upper bound {hi.hi} "
                f"along axis {ax}: the generator range is empty",
                info.pos, info.function,
            )
            return True
        if ext is None or (info.dot_lower and info.dot_upper):
            return False
        # SAC203: the range provably leaves [0, ext-1].
        if not info.dot_lower and lo.hi is not None \
                and lo.hi.always_neg():
            self.sink(
                "SAC203",
                f"generator lower bound {lo.hi} is negative along "
                f"axis {ax}",
                info.pos, info.function,
            )
            return True
        if not info.dot_upper and hi.lo is not None:
            over = hi.lo.sub(ext).add(_ONE)
            if over.always_pos():
                self.sink(
                    "SAC203",
                    f"generator upper bound {hi.lo} reaches past the "
                    f"frame extent {ext} along axis {ax}",
                    info.pos, info.function,
                )
                return True
        return False

    # -- SAC202 ------------------------------------------------------------

    def _check_coverage(self, info: WithLoopInfo) -> None:
        frame = info.frame
        if frame is None:
            return
        # Stride gaps: step > width leaves every block followed by a gap
        # (provided the range spans more than one block, which we do not
        # try to prove — a strided genarray is gap-prone by construction).
        for ax, (s, w) in enumerate(zip(info.step, info.width)):
            if s is not None and w is not None and s > w:
                self.sink(
                    "SAC202",
                    f"step {s} with width {w} along axis {ax} leaves "
                    f"gaps; uncovered cells take the default value",
                    info.pos, info.function,
                )
                return
        if info.dot_lower and info.dot_upper:
            return  # `.` bounds cover the frame by construction
        if info.rank is None or info.lower is None or info.upper is None:
            return
        for ax in range(min(len(info.lower), len(info.upper))):
            lo, hi = info.bound_pair(ax)
            if not info.dot_lower and lo.lo is not None \
                    and lo.lo.always_pos():
                self.sink(
                    "SAC202",
                    f"generator starts at {lo.lo} along axis {ax}; "
                    f"indices below it take the default value",
                    info.pos, info.function,
                )
                return
            ext = frame.extent(ax) if (
                frame.rank is None or ax < frame.rank) else None
            if ext is None or info.dot_upper:
                continue
            if hi.hi is not None:
                gap = ext.sub(_ONE).sub(hi.hi)
                if gap.always_pos():
                    self.sink(
                        "SAC202",
                        f"generator stops at {hi.hi} along axis {ax} "
                        f"but the frame extends to {ext.sub(_ONE)}; "
                        f"the tail takes the default value",
                        info.pos, info.function,
                    )
                    return
