"""May-alias analysis over function-local names.

A forward dataflow on PR 1's CFG whose state is a set of unordered
*may-alias pairs* ``{a, b}``: at this program point, the values bound to
``a`` and ``b`` may share a buffer.  The backend makes this more than a
theoretical concern — partial selection compiles to a NumPy basic-slice
**view**, and a call can return one of its arguments (see
:attr:`~repro.sac.analysis.effects.FunctionSummary.may_return_params`),
so ``b = a[0]`` and ``a = SetupPeriodicBorder(a)`` both propagate
buffers, not just values.

Transfer function of an assignment ``t = e``:

* compute the *base sources* of ``e`` — the named values whose buffer
  the result may share (:func:`~repro.sac.analysis.effects.alias_sources`:
  a variable is its own source, selection passes through, calls go
  through callee summaries, WITH-loops and arithmetic are fresh);
* the new ``t`` may alias each source and each of the source's current
  partners (the shared buffer may be the one the source shares);
* every pair involving the old ``t`` dies.

Distinct array parameters are assumed to alias each other at entry — a
caller is free to pass the same array twice.  The analysis is *may*:
absence of a pair is a proof of non-aliasing, presence proves nothing.
"""

from __future__ import annotations

from itertools import combinations

from ..ast_nodes import Assign, FunDef
from ..sactypes import ShapeKind
from .cfg import CFG, Action, build_cfg
from .dataflow import DataflowAnalysis, solve
from .effects import EffectsAnalysis, alias_sources

__all__ = ["AliasPairs", "AliasAnalysis"]

#: One alias state: canonically ordered name pairs.
AliasPairs = frozenset[tuple[str, str]]


def _pair(a: str, b: str) -> tuple[str, str]:
    return (a, b) if a <= b else (b, a)


def _apply(effects: EffectsAnalysis, act: Action,
           pairs: AliasPairs) -> AliasPairs:
    """Alias pairs after one action, given the pairs before it."""
    if act.defines is None or not isinstance(act.node, Assign):
        return pairs
    target = act.defines
    sources = alias_sources(act.node.value, effects)
    gen: set[tuple[str, str]] = set()
    for s in sources:
        partners = {s}
        for a, b in pairs:
            if a == s:
                partners.add(b)
            elif b == s:
                partners.add(a)
        for w in partners:
            if w != target:
                gen.add(_pair(target, w))
    kept = {p for p in pairs if target not in p}
    return frozenset(kept | gen)


class _MayAlias(DataflowAnalysis):
    direction = "forward"

    def __init__(self, fun: FunDef, effects: EffectsAnalysis):
        self._effects = effects
        self._array_params = [
            p.name for p in fun.params
            if p.type.kind is not ShapeKind.SCALAR
        ]

    def boundary(self, cfg: CFG) -> AliasPairs:
        return frozenset(_pair(a, b) for a, b in
                         combinations(self._array_params, 2))

    def transfer(self, block_id: int, actions: list[Action],
                 state: frozenset) -> frozenset:
        pairs: AliasPairs = state
        for act in actions:
            pairs = _apply(self._effects, act, pairs)
        return pairs


class AliasAnalysis:
    """Solved may-alias pairs of one function, queryable per action."""

    def __init__(self, fun: FunDef, effects: EffectsAnalysis,
                 cfg: CFG | None = None):
        self.fun = fun
        self.cfg = cfg if cfg is not None else build_cfg(fun)
        self._effects = effects
        self._solved = solve(self.cfg, _MayAlias(fun, effects))

    def pairs_before(self, block: int, index: int) -> AliasPairs:
        """Alias pairs in force just before action ``index`` of
        ``block`` (recomputed by walking the block prefix)."""
        pairs: AliasPairs = self._solved[block][0]
        for act in self.cfg.blocks[block].actions[:index]:
            pairs = _apply(self._effects, act, pairs)
        return pairs

    def pairs_after(self, block: int, index: int) -> AliasPairs:
        pairs = self.pairs_before(block, index)
        return _apply(self._effects,
                      self.cfg.blocks[block].actions[index], pairs)

    @staticmethod
    def may_alias(pairs: AliasPairs, a: str, b: str) -> bool:
        return a == b or _pair(a, b) in pairs

    @staticmethod
    def partners(pairs: AliasPairs, name: str) -> frozenset[str]:
        """Every name that may share a buffer with ``name``."""
        out = set()
        for a, b in pairs:
            if a == name:
                out.add(b)
            elif b == name:
                out.add(a)
        return frozenset(out)
