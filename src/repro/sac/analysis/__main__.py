"""Command-line interface of the SAC static analyzer.

    python -m repro.sac.analysis file.sac [file2.sac ...]
        [--format {text,json,sarif}] [--fail-on {error,warning,never}]
        [--no-prelude] [--no-lint] [--certificates]

Exit status is 0 when no finding reaches the ``--fail-on`` severity
(default: error), 1 otherwise, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys

from ..diagnostics import (
    Severity,
    render_json,
    render_sarif,
    render_text,
)
from .driver import AnalysisOptions, analyze_file


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.sac.analysis",
        description="Static shape/partition/race analyzer for SAC "
                    "programs (error codes SAC0xx-SAC4xx; see "
                    "docs/ANALYSIS.md).",
    )
    p.add_argument("files", nargs="+", metavar="FILE.sac",
                   help="SAC source files to analyze")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text", help="output format (default: text)")
    p.add_argument("--fail-on", choices=("error", "warning", "never"),
                   default="error",
                   help="lowest severity that causes exit status 1 "
                        "(default: error)")
    p.add_argument("--no-prelude", action="store_true",
                   help="do not link the stdlib prelude before analyzing")
    p.add_argument("--no-lint", action="store_true",
                   help="skip the SAC4xx dataflow lints")
    p.add_argument("--all-functions", action="store_true",
                   help="also report findings inside the linked prelude")
    p.add_argument("--certificates", action="store_true",
                   help="print the per-WITH-loop SPMD certificates "
                        "(text format only)")
    return p


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    fail_on = {"error": Severity.ERROR, "warning": Severity.WARNING,
               "never": None}[args.fail_on]
    options = AnalysisOptions(
        include_prelude=not args.no_prelude,
        report_prelude=args.all_functions,
        lint=not args.no_lint,
        fail_on=fail_on or Severity.ERROR,
    )

    diagnostics = []
    certificates = []
    failed = False
    for path in args.files:
        try:
            report = analyze_file(path, options)
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        diagnostics.extend(report.diagnostics)
        certificates.extend(report.certificates)
        if fail_on is not None and any(
                d.severity >= fail_on for d in report.diagnostics):
            failed = True

    if args.format == "json":
        print(render_json(diagnostics))
    elif args.format == "sarif":
        print(render_sarif(diagnostics))
    else:
        print(render_text(diagnostics))
        if args.certificates:
            print()
            for cert in certificates:
                print(cert)

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
