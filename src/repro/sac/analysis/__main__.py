"""Command-line interface of the SAC static analyzer.

    python -m repro.sac.analysis file.sac [file2.sac ...]
        [--format {text,json,sarif}] [--fail-on {error,warning,never}]
        [--select CODES] [--ignore CODES]
        [--no-prelude] [--no-lint] [--no-reuse] [--certificates]

``--select``/``--ignore`` take comma-separated code prefixes
(``--select SAC5`` keeps only the memory-effects family, ``--ignore
SAC404`` drops one lint).  Ignore wins over select, and both apply
before the ``--fail-on`` judgement, so a filtered-out warning cannot
fail the run.

Exit status is 0 when no finding reaches the ``--fail-on`` severity
(default: error), 1 otherwise, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys

from ..diagnostics import (
    CODE_CATALOGUE,
    Severity,
    render_json,
    render_sarif,
    render_text,
)
from .driver import AnalysisOptions, analyze_file


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.sac.analysis",
        description="Static shape/partition/race/effects analyzer for "
                    "SAC programs (error codes SAC0xx-SAC5xx; see "
                    "docs/ANALYSIS.md).",
    )
    p.add_argument("files", nargs="+", metavar="FILE.sac",
                   help="SAC source files to analyze")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text", help="output format (default: text)")
    p.add_argument("--fail-on", choices=("error", "warning", "never"),
                   default="error",
                   help="lowest severity that causes exit status 1 "
                        "(default: error)")
    p.add_argument("--select", metavar="CODES",
                   help="comma-separated code prefixes to keep "
                        "(e.g. SAC5 or SAC201,SAC3); default: all")
    p.add_argument("--ignore", metavar="CODES",
                   help="comma-separated code prefixes to drop "
                        "(e.g. SAC404); wins over --select")
    p.add_argument("--no-prelude", action="store_true",
                   help="do not link the stdlib prelude before analyzing")
    p.add_argument("--no-lint", action="store_true",
                   help="skip the SAC4xx dataflow lints")
    p.add_argument("--no-reuse", action="store_true",
                   help="skip the SAC5xx effects/alias/reuse "
                        "certification")
    p.add_argument("--all-functions", action="store_true",
                   help="also report findings inside the linked prelude")
    p.add_argument("--certificates", action="store_true",
                   help="print the per-WITH-loop SPMD and reuse "
                        "certificates (text format only)")
    return p


def _parse_prefixes(spec: str | None, flag: str) -> tuple[str, ...]:
    """Validate a comma-separated code-prefix list against the
    catalogue; empty/None means no filtering on that side."""
    if not spec:
        return ()
    prefixes = tuple(s.strip() for s in spec.split(",") if s.strip())
    for prefix in prefixes:
        if not any(code.startswith(prefix) for code in CODE_CATALOGUE):
            known = ", ".join(sorted(CODE_CATALOGUE))
            raise ValueError(
                f"error: {flag} prefix {prefix!r} matches no known "
                f"diagnostic code ({known})")
    return prefixes


def _keep(code: str, select: tuple[str, ...],
          ignore: tuple[str, ...]) -> bool:
    if any(code.startswith(p) for p in ignore):
        return False
    return not select or any(code.startswith(p) for p in select)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    fail_on = {"error": Severity.ERROR, "warning": Severity.WARNING,
               "never": None}[args.fail_on]
    try:
        select = _parse_prefixes(args.select, "--select")
        ignore = _parse_prefixes(args.ignore, "--ignore")
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    options = AnalysisOptions(
        include_prelude=not args.no_prelude,
        report_prelude=args.all_functions,
        lint=not args.no_lint,
        reuse=not args.no_reuse,
        fail_on=fail_on or Severity.ERROR,
    )

    diagnostics = []
    certificates = []
    reuse_certificates = []
    failed = False
    for path in args.files:
        try:
            report = analyze_file(path, options)
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        kept = [d for d in report.diagnostics
                if _keep(d.code, select, ignore)]
        diagnostics.extend(kept)
        certificates.extend(report.certificates)
        reuse_certificates.extend(report.reuse_certificates)
        if fail_on is not None and any(
                d.severity >= fail_on for d in kept):
            failed = True

    if args.format == "json":
        print(render_json(diagnostics))
    elif args.format == "sarif":
        print(render_sarif(diagnostics))
    else:
        print(render_text(diagnostics))
        if args.certificates:
            print()
            for cert in certificates:
                print(cert)
            if certificates and reuse_certificates:
                print()
            for rcert in reuse_certificates:
                print(rcert)

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
