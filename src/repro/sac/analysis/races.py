"""SPMD-safety certification of WITH-loops (``SAC3xx``).

The interpreter (and the paper's compiler) may execute a WITH-loop's
iterations concurrently across a thread team (``runtime/spmd.py``).
That is safe exactly when

1. no two iterations write the same cell of the result frame — for the
   single-generator dialect that is the partition-disjointness condition
   ``width <= step`` proven by :mod:`repro.sac.analysis.partition`, and
2. for ``fold`` loops, the folding function is associative and
   commutative, so partial reductions may combine in any order.  The
   operators the runtime itself folds with (``FOLD_UFUNCS``: ``+ * min
   max``) are known-safe; a fold naming any other function is flagged
   **SAC302** (warning) — it may well be correct, but cannot be
   certified here.

Overlapping writes are **SAC301** (error).  Every WITH-loop visited
yields a :class:`LoopCertificate`, so a caller (the ``mg_sac`` loader
gate) can assert that a whole program is certified race-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..builtins import FOLD_UFUNCS
from ..errors import SourcePos
from .shapes import WithLoopInfo

__all__ = ["LoopCertificate", "RaceChecker", "SAFE_FOLD_FUNCTIONS"]

#: Fold functions the runtime reduces with associative-commutative
#: ufuncs — reordering partial results cannot change the outcome
#: (modulo floating-point rounding, which the paper accepts too).
SAFE_FOLD_FUNCTIONS = frozenset(FOLD_UFUNCS)


@dataclass
class LoopCertificate:
    """SPMD verdict for one WITH-loop."""

    function: str
    kind: str
    pos: Optional[SourcePos]
    safe: bool
    reasons: tuple[str, ...] = ()

    def __str__(self) -> str:
        verdict = "SPMD-safe" if self.safe else "NOT certified"
        where = f" at {self.pos}" if self.pos else ""
        why = f" ({'; '.join(self.reasons)})" if self.reasons else ""
        return (f"{self.function}: {self.kind} WITH-loop{where}: "
                f"{verdict}{why}")


class RaceChecker:
    """WITH-loop listener emitting SAC3xx and collecting certificates."""

    def __init__(self, sink: Callable):
        # sink(code, message, pos, function)
        self.sink = sink
        self.certificates: list[LoopCertificate] = []

    def __call__(self, info: WithLoopInfo) -> None:
        reasons: list[str] = []
        safe = True
        if info.kind in ("genarray", "modarray"):
            for ax, (s, w) in enumerate(zip(info.step, info.width)):
                if s is not None and w is not None and w > s:
                    safe = False
                    reasons.append(
                        f"width {w} > step {s} along axis {ax}")
                    self.sink(
                        "SAC301",
                        f"iteration blocks overlap (width {w} > step "
                        f"{s} along axis {ax}): concurrent iterations "
                        f"write the same cells",
                        info.pos, info.function,
                    )
                    break
        else:  # fold
            fun = info.fold_fun
            if fun is not None and fun not in SAFE_FOLD_FUNCTIONS:
                safe = False
                reasons.append(
                    f"fold function '{fun}' not certified "
                    f"associative-commutative")
                self.sink(
                    "SAC302",
                    f"fold function '{fun}' is not one of the certified "
                    f"associative-commutative operators "
                    f"({', '.join(sorted(SAFE_FOLD_FUNCTIONS))}); "
                    f"parallel reduction order may change the result",
                    info.pos, info.function,
                )
        self.certificates.append(
            LoopCertificate(info.function, info.kind, info.pos, safe,
                            tuple(reasons)))

    @property
    def all_safe(self) -> bool:
        return all(c.safe for c in self.certificates)

    def unsafe(self) -> list[LoopCertificate]:
        return [c for c in self.certificates if not c.safe]
