"""Control-flow graphs over the SAC AST.

A function body becomes a graph of :class:`BasicBlock` nodes, each a
straight-line sequence of :class:`Action` records.  An action is the
dataflow view of one statement or condition: the variable it defines (if
any), the variables it reads, and the AST node it came from (for
positions).  Loops contribute back edges; ``return`` jumps to the
synthetic exit block, so statements following a return end up in an
unreachable block — which is exactly how the lint pass finds them.

The CFG is the substrate of :mod:`repro.sac.analysis.dataflow`; it makes
no judgment calls of its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ast_nodes import (
    Assign,
    BinOp,
    Block,
    Call,
    Dot,
    DoWhile,
    Expr,
    ExprStmt,
    FoldOp,
    For,
    FunDef,
    GenarrayOp,
    If,
    ModarrayOp,
    Node,
    Return,
    Select,
    Stmt,
    UnOp,
    Var,
    VectorLit,
    While,
    WithLoop,
)

__all__ = ["Action", "BasicBlock", "CFG", "build_cfg", "free_vars"]


def free_vars(expr: Expr) -> frozenset[str]:
    """Variables an expression reads (WITH-loop index vars are bound)."""
    out: set[str] = set()
    _free_vars(expr, frozenset(), out)
    return frozenset(out)


def _free_vars(node: Node, bound: frozenset[str], out: set[str]) -> None:
    if isinstance(node, Var):
        if node.name not in bound:
            out.add(node.name)
    elif isinstance(node, VectorLit):
        for e in node.elements:
            _free_vars(e, bound, out)
    elif isinstance(node, BinOp):
        _free_vars(node.left, bound, out)
        _free_vars(node.right, bound, out)
    elif isinstance(node, UnOp):
        _free_vars(node.operand, bound, out)
    elif isinstance(node, Select):
        _free_vars(node.array, bound, out)
        _free_vars(node.index, bound, out)
    elif isinstance(node, Call):
        for a in node.args:
            _free_vars(a, bound, out)
    elif isinstance(node, WithLoop):
        gen = node.generator
        for b in (gen.lower, gen.upper, gen.step, gen.width):
            if b is not None and not isinstance(b, Dot):
                _free_vars(b, bound, out)
        inner = bound | {gen.var}
        op = node.operation
        if isinstance(op, GenarrayOp):
            _free_vars(op.shape, bound, out)
            _free_vars(op.body, inner, out)
        elif isinstance(op, ModarrayOp):
            _free_vars(op.array, bound, out)
            _free_vars(op.body, inner, out)
        elif isinstance(op, FoldOp):
            _free_vars(op.neutral, bound, out)
            _free_vars(op.body, inner, out)
    # literals and Dot read nothing


@dataclass(frozen=True)
class Action:
    """Dataflow footprint of one statement or condition."""

    uses: frozenset[str]
    defines: str | None
    node: Node
    #: True for loop/branch conditions (no statement of their own).
    is_cond: bool = False

    @property
    def pos(self):
        return getattr(self.node, "pos", None)


@dataclass
class BasicBlock:
    id: int
    actions: list[Action] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)


class CFG:
    """Control-flow graph of one function."""

    def __init__(self, fun: FunDef):
        self.fun = fun
        self.blocks: list[BasicBlock] = []
        self.entry = self._new_block().id
        self.exit = self._new_block().id

    def _new_block(self) -> BasicBlock:
        b = BasicBlock(len(self.blocks))
        self.blocks.append(b)
        return b

    def add_edge(self, a: int, b: int) -> None:
        if b not in self.blocks[a].succs:
            self.blocks[a].succs.append(b)
        if a not in self.blocks[b].preds:
            self.blocks[b].preds.append(a)

    def reachable(self) -> set[int]:
        """Block ids reachable from the entry."""
        seen: set[int] = set()
        stack = [self.entry]
        while stack:
            b = stack.pop()
            if b in seen:
                continue
            seen.add(b)
            stack.extend(self.blocks[b].succs)
        return seen

    def rpo(self) -> list[int]:
        """Reverse postorder over reachable blocks (forward analyses)."""
        seen: set[int] = set()
        order: list[int] = []

        def visit(b: int) -> None:
            if b in seen:
                return
            seen.add(b)
            for s in self.blocks[b].succs:
                visit(s)
            order.append(b)

        visit(self.entry)
        return list(reversed(order))


class _Builder:
    def __init__(self, fun: FunDef):
        self.cfg = CFG(fun)

    def build(self) -> CFG:
        body_entry = self.cfg._new_block()
        self.cfg.add_edge(self.cfg.entry, body_entry.id)
        last = self._block(self.cfg.fun.body, body_entry.id)
        if last is not None:
            # Fall-through off the end of the function body.
            self.cfg.add_edge(last, self.cfg.exit)
        return self.cfg

    # Each _stmt/_block returns the id of the block control flows out of,
    # or None when every path has already left (returned).

    def _block(self, block: Block, cur: int | None) -> int | None:
        for stmt in block.statements:
            if cur is None:
                # Dead code after a return: park it in a fresh block with
                # no predecessors so lint can report it as unreachable.
                cur = self.cfg._new_block().id
            cur = self._stmt(stmt, cur)
        return cur

    def _append(self, cur: int, action: Action) -> None:
        self.cfg.blocks[cur].actions.append(action)

    def _stmt(self, stmt: Stmt, cur: int) -> int | None:
        cfg = self.cfg
        if isinstance(stmt, Assign):
            self._append(cur, Action(free_vars(stmt.value), stmt.target, stmt))
            return cur
        if isinstance(stmt, (ExprStmt,)):
            self._append(cur, Action(free_vars(stmt.expr), None, stmt))
            return cur
        if isinstance(stmt, Return):
            self._append(cur, Action(free_vars(stmt.value), None, stmt))
            cfg.add_edge(cur, cfg.exit)
            return None
        if isinstance(stmt, Block):
            return self._block(stmt, cur)
        if isinstance(stmt, If):
            self._append(cur, Action(free_vars(stmt.cond), None, stmt.cond,
                                     is_cond=True))
            then_b = cfg._new_block()
            cfg.add_edge(cur, then_b.id)
            then_end = self._block(stmt.then, then_b.id)
            join = cfg._new_block()
            if stmt.orelse is not None:
                else_b = cfg._new_block()
                cfg.add_edge(cur, else_b.id)
                else_end = self._block(stmt.orelse, else_b.id)
                if else_end is not None:
                    cfg.add_edge(else_end, join.id)
            else:
                cfg.add_edge(cur, join.id)
            if then_end is not None:
                cfg.add_edge(then_end, join.id)
            if not join.preds:
                return None  # both branches returned
            return join.id
        if isinstance(stmt, While):
            header = cfg._new_block()
            cfg.add_edge(cur, header.id)
            self._append(header.id,
                         Action(free_vars(stmt.cond), None, stmt.cond,
                                is_cond=True))
            body = cfg._new_block()
            after = cfg._new_block()
            cfg.add_edge(header.id, body.id)
            cfg.add_edge(header.id, after.id)
            body_end = self._block(stmt.body, body.id)
            if body_end is not None:
                cfg.add_edge(body_end, header.id)
            return after.id
        if isinstance(stmt, DoWhile):
            body = cfg._new_block()
            cfg.add_edge(cur, body.id)
            body_end = self._block(stmt.body, body.id)
            after = cfg._new_block()
            if body_end is not None:
                self._append(body_end,
                             Action(free_vars(stmt.cond), None, stmt.cond,
                                    is_cond=True))
                cfg.add_edge(body_end, body.id)
                cfg.add_edge(body_end, after.id)
            if not after.preds:
                return None
            return after.id
        if isinstance(stmt, For):
            self._append(cur, Action(free_vars(stmt.init.value),
                                     stmt.init.target, stmt.init))
            header = cfg._new_block()
            cfg.add_edge(cur, header.id)
            self._append(header.id,
                         Action(free_vars(stmt.cond), None, stmt.cond,
                                is_cond=True))
            body = cfg._new_block()
            after = cfg._new_block()
            cfg.add_edge(header.id, body.id)
            cfg.add_edge(header.id, after.id)
            body_end = self._block(stmt.body, body.id)
            if body_end is not None:
                self._append(body_end,
                             Action(free_vars(stmt.update.value),
                                    stmt.update.target, stmt.update))
                cfg.add_edge(body_end, header.id)
            return after.id
        # Unknown statement kinds flow through unchanged.
        return cur


def build_cfg(fun: FunDef) -> CFG:
    """Build the control-flow graph of one function."""
    return _Builder(fun).build()
