"""Abstract shape and index-range inference for SAC programs.

An abstract interpreter over the AST: every variable is mapped to an
:class:`AValue` describing what is statically known about it — its shape
(per-axis extents as *affine* expressions over symbolic array extents)
and, for integer scalars/vectors, an *interval* of possible values with
affine endpoints.  Array extents are symbols (``ext(u, i)``), so facts
like "``iv`` ranges over ``[1, shape(u)-2]``" survive arithmetic and
prove, e.g., that the stencil access ``u[iv + ov - 1]`` with
``ov in [0,2]`` stays inside the extended grid (the paper's artificial
halo border, Figs. 4-10) — or that a widened stencil escapes it.

Calls to ``inline`` functions are expanded abstractly (depth-limited,
recursion-guarded), which is how generator context reaches the helper
that performs the actual array access (``StencilSum`` etc.).  Non-inline
calls fall back to the declared return type with fresh extent symbols.

Checks emitted here (family ``SAC1xx``):

* **SAC101** — elementwise operation on provably mismatched shapes,
* **SAC102** — array access provably escaping the frame bounds,
* **SAC103** — selection index rank exceeding the array rank,
* **SAC104** — generator rank exceeding the frame rank.

The WITH-loop partition and race checks (``SAC2xx``/``SAC3xx``) plug in
as listeners: every WITH-loop the interpreter visits is handed to them
as a resolved :class:`WithLoopInfo`.

Everything is *prove-or-stay-silent*: a diagnostic is only emitted when
the violation holds for every concrete execution consistent with the
abstract facts, so sound-but-unknown code (the usual case in
shape-polymorphic SAC) produces no noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..ast_nodes import (
    Assign,
    BinOp,
    Block,
    BoolLit,
    Call,
    Dot,
    DoubleLit,
    DoWhile,
    Expr,
    ExprStmt,
    FoldOp,
    For,
    FunDef,
    GenarrayOp,
    If,
    IntLit,
    ModarrayOp,
    Program,
    Return,
    Select,
    Stmt,
    UnOp,
    Var,
    VectorLit,
    While,
    WithLoop,
)
from ..builtins import is_builtin
from ..diagnostics import Diagnostic
from ..errors import SourcePos
from ..sactypes import SacType, ShapeKind

__all__ = [
    "Affine",
    "Interval",
    "AValue",
    "WithLoopInfo",
    "ShapeAnalyzer",
    "UNKNOWN",
]


# ---------------------------------------------------------------------------
# Affine expressions over symbolic extents.
# ---------------------------------------------------------------------------

# Symbols: ('ext', owner, axis) is the (nonnegative) extent of an array
# along one axis; axis '*' stands for "the axis under consideration" of a
# rank-unknown array.  ('int', owner) is an opaque integer (may be
# negative), introduced for int-typed parameters.
Sym = tuple


@dataclass(frozen=True)
class Affine:
    """Integer-affine expression: sum of coeff*symbol terms + const."""

    terms: tuple[tuple[Sym, int], ...] = ()
    const: int = 0

    @staticmethod
    def of(c: int) -> "Affine":
        return Affine((), int(c))

    @staticmethod
    def sym(s: Sym) -> "Affine":
        return Affine(((s, 1),), 0)

    def _combine(self, other: "Affine", sign: int) -> "Affine":
        coeffs: dict[Sym, int] = dict(self.terms)
        for s, k in other.terms:
            coeffs[s] = coeffs.get(s, 0) + sign * k
        terms = tuple(sorted((s, k) for s, k in coeffs.items() if k != 0))
        return Affine(terms, self.const + sign * other.const)

    def add(self, other: "Affine") -> "Affine":
        return self._combine(other, 1)

    def sub(self, other: "Affine") -> "Affine":
        return self._combine(other, -1)

    def scale(self, k: int) -> "Affine":
        if k == 0:
            return Affine.of(0)
        return Affine(tuple((s, c * k) for s, c in self.terms),
                      self.const * k)

    def neg(self) -> "Affine":
        return self.scale(-1)

    @property
    def is_const(self) -> bool:
        return not self.terms

    # -- proofs (symbols of kind 'ext' are >= 0; 'int' is unconstrained) --

    def _ext_only_nonneg_coeffs(self) -> bool:
        return all(s[0] == "ext" and c > 0 for s, c in self.terms)

    def always_nonneg(self) -> bool:
        """Provably >= 0 for every assignment of the symbols."""
        return self._ext_only_nonneg_coeffs() and self.const >= 0

    def always_pos(self) -> bool:
        """Provably >= 1."""
        return self._ext_only_nonneg_coeffs() and self.const >= 1

    def always_neg(self) -> bool:
        """Provably <= -1."""
        return self.neg().always_pos()

    def __str__(self) -> str:
        parts = []
        for (kind, *rest), c in self.terms:
            name = (f"shape({rest[0]})[{rest[1]}]" if kind == "ext"
                    else str(rest[0]))
            parts.append(f"{c}*{name}" if c != 1 else name)
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts).replace("+ -", "- ")


@dataclass(frozen=True)
class Interval:
    """Closed integer interval with affine endpoints (None = unbounded)."""

    lo: Optional[Affine] = None
    hi: Optional[Affine] = None

    @staticmethod
    def point(a: "Affine | int") -> "Interval":
        if isinstance(a, int):
            a = Affine.of(a)
        return Interval(a, a)

    @property
    def is_point(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    @property
    def const_value(self) -> Optional[int]:
        if self.is_point and self.lo.is_const:
            return self.lo.const
        return None

    def add(self, other: "Interval") -> "Interval":
        lo = self.lo.add(other.lo) if self.lo and other.lo else None
        hi = self.hi.add(other.hi) if self.hi and other.hi else None
        return Interval(lo, hi)

    def neg(self) -> "Interval":
        return Interval(self.hi.neg() if self.hi else None,
                        self.lo.neg() if self.lo else None)

    def sub(self, other: "Interval") -> "Interval":
        return self.add(other.neg())

    def scale(self, k: int) -> "Interval":
        scaled = Interval(self.lo.scale(k) if self.lo else None,
                          self.hi.scale(k) if self.hi else None)
        return scaled if k >= 0 else Interval(scaled.hi and scaled.lo and
                                              self.hi.scale(k),
                                              self.lo.scale(k)
                                              if self.lo else None)

    def mul(self, other: "Interval") -> "Interval":
        if (k := other.const_value) is not None:
            return self._scale_checked(k)
        if (k := self.const_value) is not None:
            return other._scale_checked(k)
        return TOP

    def _scale_checked(self, k: int) -> "Interval":
        if k >= 0:
            return Interval(self.lo.scale(k) if self.lo else None,
                            self.hi.scale(k) if self.hi else None)
        return Interval(self.hi.scale(k) if self.hi else None,
                        self.lo.scale(k) if self.lo else None)

    def join(self, other: "Interval") -> "Interval":
        def pick(a, b, want_min):
            if a is None or b is None:
                return None
            if a == b:
                return a
            if a.is_const and b.is_const:
                return Affine.of(min(a.const, b.const) if want_min
                                 else max(a.const, b.const))
            return None

        return Interval(pick(self.lo, other.lo, True),
                        pick(self.hi, other.hi, False))

    def __str__(self) -> str:
        lo = str(self.lo) if self.lo is not None else "-inf"
        hi = str(self.hi) if self.hi is not None else "+inf"
        return f"[{lo}, {hi}]"


TOP = Interval()


# ---------------------------------------------------------------------------
# Abstract values.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AValue:
    """What is statically known about one value.

    ``kind`` is ``'scalar'``, ``'array'`` or ``'unknown'``.  For arrays,
    ``rank``/``extents`` hold the shape (affine extents, None for
    unknown); rank-unknown arrays carry an ``owner`` so their (existing
    but unknown) extents still have a symbol.  Integer vectors
    additionally track per-component value intervals (``comps``, or
    ``uniform`` when the length is unknown); integer scalars track
    ``sval``.
    """

    kind: str = "unknown"
    rank: Optional[int] = None
    extents: Optional[tuple[Optional[Affine], ...]] = None
    owner: Optional[str] = None
    comps: Optional[tuple[Interval, ...]] = None
    uniform: Optional[Interval] = None
    sval: Optional[Interval] = None

    # -- constructors ------------------------------------------------------

    @staticmethod
    def scalar(sval: Interval | None = None) -> "AValue":
        return AValue(kind="scalar", sval=sval)

    @staticmethod
    def array(extents: tuple[Optional[Affine], ...]) -> "AValue":
        return AValue(kind="array", rank=len(extents),
                      extents=tuple(extents))

    @staticmethod
    def array_unknown_rank(owner: str | None) -> "AValue":
        return AValue(kind="array", owner=owner)

    @staticmethod
    def int_vector(length: Optional[Affine],
                   comps: Optional[tuple[Interval, ...]] = None,
                   uniform: Optional[Interval] = None) -> "AValue":
        return AValue(kind="array", rank=1, extents=(length,),
                      comps=comps, uniform=uniform)

    # -- accessors ---------------------------------------------------------

    @property
    def is_array(self) -> bool:
        return self.kind == "array"

    @property
    def is_scalar(self) -> bool:
        return self.kind == "scalar"

    def extent(self, i: int) -> Optional[Affine]:
        """Affine extent along axis ``i``, if known (symbolically)."""
        if self.extents is not None:
            return self.extents[i] if i < len(self.extents) else None
        if self.is_array and self.owner is not None:
            return Affine.sym(("ext", self.owner, "*"))
        return None

    def comp(self, i: int) -> Interval:
        """Value interval of vector component ``i``."""
        if self.comps is not None and i < len(self.comps):
            return self.comps[i]
        if self.uniform is not None:
            return self.uniform
        return TOP

    @property
    def vlen(self) -> Optional[int]:
        """Concrete length of a rank-1 int vector, if known."""
        if self.comps is not None:
            return len(self.comps)
        if (self.rank == 1 and self.extents and self.extents[0] is not None
                and self.extents[0].is_const):
            return self.extents[0].const
        return None


UNKNOWN = AValue()


def join_avalue(a: AValue, b: AValue) -> AValue:
    if a == b:
        return a
    if a.kind != b.kind:
        return UNKNOWN
    if a.kind == "scalar":
        if a.sval is not None and b.sval is not None:
            return AValue.scalar(a.sval.join(b.sval))
        return AValue.scalar()
    if a.kind == "array":
        if a.rank is not None and a.rank == b.rank:
            exts = tuple(
                ea if (ea is not None and ea == eb) else None
                for ea, eb in zip(a.extents or (), b.extents or ())
            ) if a.extents and b.extents else None
            comps = None
            if (a.comps is not None and b.comps is not None
                    and len(a.comps) == len(b.comps)):
                comps = tuple(x.join(y) for x, y in zip(a.comps, b.comps))
            if exts is not None:
                return AValue(kind="array", rank=a.rank, extents=exts,
                              comps=comps)
        if a.owner is not None and a.owner == b.owner:
            return AValue.array_unknown_rank(a.owner)
        return AValue(kind="array")
    return UNKNOWN


def avalue_from_type(t: SacType, owner: str | None) -> AValue:
    """Abstract value of a parameter / opaque result of declared type."""
    if t.kind is ShapeKind.SCALAR:
        sval = None
        if owner is not None and t.base.value == "int":
            sval = Interval.point(Affine.sym(("int", owner)))
        return AValue.scalar(sval)
    if t.kind is ShapeKind.AKS:
        return AValue.array(tuple(Affine.of(e) for e in t.shape))
    if t.kind is ShapeKind.AKD:
        if owner is None:
            return AValue(kind="array", rank=t.rank,
                          extents=(None,) * t.rank)
        return AValue.array(tuple(Affine.sym(("ext", owner, i))
                                  for i in range(t.rank)))
    # AUD+/AUD*: rank unknown.
    return AValue.array_unknown_rank(owner)


# ---------------------------------------------------------------------------
# Resolved WITH-loop description, handed to partition/race listeners.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WithLoopInfo:
    """Everything the partition/race checkers need about one WITH-loop."""

    wl: WithLoop
    function: str
    #: 'genarray' | 'modarray' | 'fold'.
    kind: str
    fold_fun: Optional[str]
    #: Abstract frame (result array), None for fold.
    frame: Optional[AValue]
    #: Known generator rank (bound vector length or frame rank).
    rank: Optional[int]
    #: Inclusive-normalized per-component bound intervals (None when the
    #: component count is unknown; then the uniform intervals apply).
    lower: Optional[tuple[Interval, ...]]
    upper: Optional[tuple[Interval, ...]]
    u_lower: Optional[Interval]
    u_upper: Optional[Interval]
    #: Per-component constant step/width (None = unknown); empty tuple
    #: when the generator has no step/width clause.
    step: tuple[Optional[int], ...]
    width: tuple[Optional[int], ...]
    #: True where the corresponding bound was the `.` token.
    dot_lower: bool = False
    dot_upper: bool = False
    #: Lengths of explicit bound vectors, when known.
    lower_len: Optional[int] = None
    upper_len: Optional[int] = None
    #: Snapshot of the abstract environment (name -> AValue) at the
    #: point the loop is evaluated.  The reuse pass reads affine extents
    #: of candidate operands out of it; excluded from equality/hash.
    env: Optional[dict] = field(default=None, compare=False)

    @property
    def pos(self) -> Optional[SourcePos]:
        return self.wl.pos

    def bound_pair(self, i: int) -> tuple[Interval, Interval]:
        lo = self.lower[i] if self.lower is not None else (
            self.u_lower or TOP)
        hi = self.upper[i] if self.upper is not None else (
            self.u_upper or TOP)
        return lo, hi


# ---------------------------------------------------------------------------
# The analyzer.
# ---------------------------------------------------------------------------

class ShapeAnalyzer:
    """Abstract interpreter emitting SAC1xx diagnostics.

    ``sink`` receives :class:`Diagnostic` objects; ``listeners`` are
    called with a :class:`WithLoopInfo` for every WITH-loop visited
    (including those inside abstractly-expanded inline calls).
    """

    def __init__(self, program: Program, sink: Callable[[Diagnostic], None],
                 listeners: tuple[Callable[[WithLoopInfo], None], ...] = (),
                 max_inline_depth: int = 6):
        self.program = program
        self.sink = sink
        self.listeners = tuple(listeners)
        self.max_inline_depth = max_inline_depth
        self.functions: dict[str, list[FunDef]] = {}
        for f in program.functions:
            self.functions.setdefault(f.name, []).append(f)
        self._fresh = 0
        self._stack: list[str] = []
        self._fname = "<none>"

    # -- reporting ---------------------------------------------------------

    def report(self, code: str, message: str,
               pos: Optional[SourcePos]) -> None:
        self.sink(Diagnostic.make(code, message, pos, self._fname))

    def _fresh_owner(self, hint: str) -> str:
        self._fresh += 1
        return f"<{hint}#{self._fresh}>"

    # -- program/function level --------------------------------------------

    def analyze_program(self) -> None:
        for fun in self.program.functions:
            self.analyze_function(fun)

    def analyze_function(self, fun: FunDef) -> None:
        self._fname = fun.name
        self._stack = [fun.name]
        env = {
            p.name: avalue_from_type(p.type, f"{fun.name}.{p.name}")
            for p in fun.params
        }
        self._exec_block(fun.body, env)
        self._fname = "<none>"

    # -- statements --------------------------------------------------------

    def _exec_block(self, block: Block, env: dict) -> list[AValue]:
        returns: list[AValue] = []
        for stmt in block.statements:
            returns.extend(self._exec_stmt(stmt, env))
        return returns

    def _exec_stmt(self, stmt: Stmt, env: dict) -> list[AValue]:
        if isinstance(stmt, Assign):
            env[stmt.target] = self.eval(stmt.value, env)
            return []
        if isinstance(stmt, Return):
            return [self.eval(stmt.value, env)]
        if isinstance(stmt, ExprStmt):
            self.eval(stmt.expr, env)
            return []
        if isinstance(stmt, Block):
            return self._exec_block(stmt, env)
        if isinstance(stmt, If):
            self.eval(stmt.cond, env)
            then_env = dict(env)
            returns = self._exec_block(stmt.then, then_env)
            else_env = dict(env)
            if stmt.orelse is not None:
                returns += self._exec_block(stmt.orelse, else_env)
            merged: dict = {}
            for name in set(then_env) | set(else_env):
                a = then_env.get(name, UNKNOWN)
                b = else_env.get(name, UNKNOWN)
                merged[name] = a if a == b else join_avalue(a, b)
            env.clear()
            env.update(merged)
            return returns
        if isinstance(stmt, (While, DoWhile, For)):
            return self._exec_loop(stmt, env)
        return []

    def _exec_loop(self, stmt, env: dict) -> list[AValue]:
        returns: list[AValue] = []
        if isinstance(stmt, For):
            returns += self._exec_stmt(stmt.init, env)
        # Widen every variable the loop may reassign, then interpret the
        # body once for its diagnostics (sound: no fact survives that
        # depends on the iteration count).
        assigned = set()
        _collect_assigned(stmt.body, assigned)
        if isinstance(stmt, For):
            assigned.add(stmt.update.target)
            assigned.add(stmt.init.target)
        for name in assigned:
            env[name] = UNKNOWN
        if isinstance(stmt, (While, For)):
            self.eval(stmt.cond, env)
        body_env = dict(env)
        returns += self._exec_block(stmt.body, body_env)
        if isinstance(stmt, For):
            self._exec_stmt(stmt.update, body_env)
        if isinstance(stmt, DoWhile):
            self.eval(stmt.cond, body_env)
        return returns

    # -- expressions -------------------------------------------------------

    def eval(self, expr: Expr, env: dict) -> AValue:
        if isinstance(expr, IntLit):
            return AValue.scalar(Interval.point(expr.value))
        if isinstance(expr, (DoubleLit, BoolLit)):
            return AValue.scalar()
        if isinstance(expr, Var):
            return env.get(expr.name, UNKNOWN)
        if isinstance(expr, Dot):
            return UNKNOWN
        if isinstance(expr, VectorLit):
            return self._eval_vector(expr, env)
        if isinstance(expr, UnOp):
            v = self.eval(expr.operand, env)
            if expr.op == "-":
                return _map_values(v, Interval.neg)
            return AValue.scalar() if v.is_scalar else v
        if isinstance(expr, BinOp):
            return self._eval_binop(expr, env)
        if isinstance(expr, Select):
            return self._eval_select(expr, env)
        if isinstance(expr, Call):
            return self._eval_call(expr, env)
        if isinstance(expr, WithLoop):
            return self._eval_withloop(expr, env)
        return UNKNOWN

    def _eval_vector(self, expr: VectorLit, env: dict) -> AValue:
        elems = [self.eval(e, env) for e in expr.elements]
        if all(e.is_scalar for e in elems):
            comps = tuple(e.sval or TOP for e in elems)
            return AValue.int_vector(Affine.of(len(elems)), comps=comps)
        # Nested literal: rank = 1 + element rank when uniform.
        ranks = {e.rank for e in elems if e.is_array}
        if len(ranks) == 1 and (r := ranks.pop()) is not None:
            return AValue(kind="array", rank=1 + r)
        return AValue(kind="array")

    # .. arithmetic ........................................................

    def _eval_binop(self, expr: BinOp, env: dict) -> AValue:
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        op = expr.op
        if op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
            return AValue.scalar()
        # Shape compatibility of elementwise arithmetic.
        self._check_elementwise(left, right, expr)
        if op in ("+", "-", "*", "/", "%"):
            return self._arith(op, left, right)
        return UNKNOWN

    def _check_elementwise(self, left: AValue, right: AValue,
                           expr: BinOp) -> None:
        if not (left.is_array and right.is_array):
            return
        if (left.rank is not None and right.rank is not None
                and left.rank != right.rank):
            self.report(
                "SAC101",
                f"elementwise '{expr.op}' on arrays of different ranks "
                f"{left.rank} and {right.rank}",
                expr.pos,
            )
            return
        if left.extents and right.extents and left.rank == right.rank:
            for ax, (ea, eb) in enumerate(zip(left.extents, right.extents)):
                if ea is None or eb is None:
                    continue
                diff = ea.sub(eb)
                if diff.is_const and diff.const != 0:
                    self.report(
                        "SAC101",
                        f"elementwise '{expr.op}' on mismatched extents "
                        f"{ea} and {eb} along axis {ax}",
                        expr.pos,
                    )
                    return

    def _arith(self, op: str, left: AValue, right: AValue) -> AValue:
        # Scalar x scalar.
        if left.is_scalar and right.is_scalar:
            a, b = left.sval, right.sval
            if a is None or b is None:
                return AValue.scalar()
            if op == "+":
                return AValue.scalar(a.add(b))
            if op == "-":
                return AValue.scalar(a.sub(b))
            if op == "*":
                return AValue.scalar(a.mul(b))
            if op == "%":
                k = b.const_value
                if k is not None and k > 0:
                    return AValue.scalar(Interval(Affine.of(0),
                                                  Affine.of(k - 1)))
                return AValue.scalar()
            if op == "/":
                ka, kb = a.const_value, b.const_value
                if ka is not None and kb not in (None, 0):
                    q = abs(ka) // abs(kb)
                    if (ka < 0) != (kb < 0):
                        q = -q
                    return AValue.scalar(Interval.point(q))
                return AValue.scalar()
            return AValue.scalar()
        # Vector (+ scalar / vector): componentwise on the value track.
        if left.is_array or right.is_array:
            arr = left if left.is_array else right
            other = right if left.is_array else left
            shape_src = arr if (arr.extents or arr.owner) else other
            result_shape = shape_src if shape_src.is_array else arr
            comps = uniform = None
            if op in ("+", "-", "*"):
                fn = {"+": Interval.add, "-": Interval.sub,
                      "*": Interval.mul}[op]
                if left.is_array and right.is_array:
                    if (left.comps is not None and right.comps is not None
                            and len(left.comps) == len(right.comps)):
                        comps = tuple(fn(x, y) for x, y
                                      in zip(left.comps, right.comps))
                    elif (left.comps or left.uniform) and \
                            (right.comps or right.uniform):
                        lu = left.uniform or _hull(left.comps)
                        ru = right.uniform or _hull(right.comps)
                        if lu is not None and ru is not None:
                            uniform = fn(lu, ru)
                else:
                    vec = left if left.is_array else right
                    sc = (right if left.is_array else left).sval
                    if sc is not None:
                        if op == "-" and right.is_array:
                            # scalar - vector
                            if vec.comps is not None:
                                comps = tuple(sc.sub(c) for c in vec.comps)
                            elif vec.uniform is not None:
                                uniform = sc.sub(vec.uniform)
                        elif vec.comps is not None:
                            comps = tuple(fn(c, sc) for c in vec.comps)
                        elif vec.uniform is not None:
                            uniform = fn(vec.uniform, sc)
            elif op == "/":
                vec = left if left.is_array else right
                k = (right.sval.const_value
                     if (left.is_array and right.is_scalar and right.sval)
                     else None)
                if k is not None and k > 0 and vec.comps is not None:
                    comps = tuple(_div_const(c, k) for c in vec.comps)
            return AValue(kind="array", rank=result_shape.rank,
                          extents=result_shape.extents,
                          owner=result_shape.owner,
                          comps=comps, uniform=uniform)
        return UNKNOWN

    # .. selection ..........................................................

    def _eval_select(self, expr: Select, env: dict) -> AValue:
        arr = self.eval(expr.array, env)
        idx = self.eval(expr.index, env)
        if not arr.is_array:
            return UNKNOWN
        # Normalize the index to per-component intervals.
        if idx.is_scalar:
            icomps: Optional[tuple[Interval, ...]] = (
                (idx.sval or TOP,))
            ilen: Optional[int] = 1
        elif idx.is_array and idx.rank == 1:
            icomps = idx.comps
            ilen = idx.vlen
            if icomps is None and ilen is not None:
                icomps = tuple((idx.uniform or TOP) for _ in range(ilen))
        else:
            return UNKNOWN
        if ilen is not None and arr.rank is not None and ilen > arr.rank:
            self.report(
                "SAC103",
                f"selection index of length {ilen} into an array of "
                f"rank {arr.rank}",
                expr.pos,
            )
            return UNKNOWN
        # Halo / bounds check per component.
        if icomps is not None:
            for ax, c in enumerate(icomps):
                self._check_axis_bounds(arr, ax, c, expr.pos)
        elif idx.uniform is not None:
            # Unknown component count: compare against the '*' extent.
            self._check_axis_bounds(arr, 0, idx.uniform, expr.pos,
                                    star=True)
        # Result shape: remaining axes.
        if ilen is not None and arr.rank is not None:
            rest = arr.rank - ilen
            if rest == 0:
                # Full selection; surface component values of tracked
                # int vectors (shape(a)[[0]] and friends).
                if (arr.comps is not None and ilen == 1
                        and icomps is not None
                        and (k := icomps[0].const_value) is not None
                        and 0 <= k < len(arr.comps)):
                    return AValue.scalar(arr.comps[k])
                if arr.uniform is not None:
                    return AValue.scalar(arr.uniform)
                return AValue.scalar()
            if arr.extents is not None:
                return AValue.array(arr.extents[ilen:])
            return AValue(kind="array", rank=rest, owner=arr.owner)
        return UNKNOWN

    def _check_axis_bounds(self, arr: AValue, axis: int, idx: Interval,
                           pos: Optional[SourcePos],
                           star: bool = False) -> None:
        ext = (Affine.sym(("ext", arr.owner, "*"))
               if star and arr.owner is not None
               else arr.extent(axis))
        if idx.hi is not None and idx.hi.always_neg():
            self.report(
                "SAC102",
                f"index along axis {axis} is always negative "
                f"({idx}); access escapes the frame",
                pos,
            )
            return
        if ext is None:
            return
        if idx.lo is not None:
            over = idx.lo.sub(ext)
            if over.always_nonneg():
                self.report(
                    "SAC102",
                    f"index along axis {axis} ({idx}) is always >= the "
                    f"extent {ext}; access escapes the frame",
                    pos,
                )
                return
        # The interesting stencil case: the access *reaches* outside on
        # the boundary iterations — its upper end provably exceeds the
        # last legal index (or its lower end provably undershoots 0).
        if idx.hi is not None:
            over = idx.hi.sub(ext).add(Affine.of(1))
            if over.always_pos():
                self.report(
                    "SAC102",
                    f"access along axis {axis} reaches index {idx.hi} "
                    f"but the frame extent is {ext}; stencil offset "
                    f"escapes the halo",
                    pos,
                )
                return
        if idx.lo is not None and idx.lo.always_neg():
            self.report(
                "SAC102",
                f"access along axis {axis} reaches index {idx.lo}, "
                f"below the frame; stencil offset escapes the halo",
                pos,
            )

    # .. calls ..............................................................

    def _eval_call(self, expr: Call, env: dict) -> AValue:
        args = [self.eval(a, env) for a in expr.args]
        name = expr.name
        handler = _BUILTIN_EVAL.get(name)
        if handler is not None:
            return handler(self, args)
        overloads = self.functions.get(name)
        if not overloads:
            return UNKNOWN  # typecheck reports unknown functions
        matching = [f for f in overloads if f.arity == len(args)]
        if (len(matching) == 1 and matching[0].inline
                and len(self._stack) <= self.max_inline_depth
                and name not in self._stack):
            return self._expand_inline(matching[0], args)
        if matching:
            results = [avalue_from_type(f.return_type,
                                        self._fresh_owner(f.name))
                       for f in matching]
            out = results[0]
            for r in results[1:]:
                out = join_avalue(out, r)
            return out
        return UNKNOWN

    def _expand_inline(self, fun: FunDef, args: list[AValue]) -> AValue:
        callee_env = {}
        for p, a in zip(fun.params, args):
            callee_env[p.name] = self._refine(a, p.type,
                                              self._fresh_owner(p.name))
        self._stack.append(fun.name)
        try:
            returns = self._exec_block(fun.body, callee_env)
        finally:
            self._stack.pop()
        if not returns:
            return UNKNOWN
        out = returns[0]
        for r in returns[1:]:
            out = join_avalue(out, r)
        return out

    def _refine(self, arg: AValue, t: SacType, owner: str) -> AValue:
        """Combine an argument's abstract value with the declared type.

        The argument's value facts (component intervals, scalar value)
        always survive; declared extents fill in axes the caller left
        unknown.
        """
        declared = avalue_from_type(t, owner)
        if arg.kind == "unknown":
            return declared
        if not (arg.is_array and declared.is_array):
            return arg
        extents = arg.extents
        rank = arg.rank
        if (extents is None and arg.owner is None
                and arg.comps is None and arg.uniform is None):
            return declared  # nothing known about the arg at all
        if declared.extents is not None and extents is not None \
                and len(extents) == len(declared.extents):
            extents = tuple(e if e is not None else d
                            for e, d in zip(extents, declared.extents))
            rank = len(extents)
        return AValue(kind="array", rank=rank, extents=extents,
                      owner=arg.owner, comps=arg.comps,
                      uniform=arg.uniform)

    # .. WITH-loops ..........................................................

    def _eval_withloop(self, wl: WithLoop, env: dict) -> AValue:
        op = wl.operation
        frame: Optional[AValue] = None
        kind = "fold"
        fold_fun = None
        if isinstance(op, GenarrayOp):
            kind = "genarray"
            shp = self.eval(op.shape, env)
            frame = self._frame_from_shape_vector(shp)
        elif isinstance(op, ModarrayOp):
            kind = "modarray"
            frame = self.eval(op.array, env)
            if not frame.is_array:
                frame = AValue(kind="array")
        else:
            assert isinstance(op, FoldOp)
            fold_fun = op.fun
            self.eval(op.neutral, env)

        info = self._resolve_generator(wl, kind, fold_fun, frame, env)
        for cb in self.listeners:
            cb(info)
        if (info.rank is not None and frame is not None
                and frame.rank is not None and info.rank > frame.rank):
            self.report(
                "SAC104",
                f"generator rank {info.rank} exceeds the frame rank "
                f"{frame.rank}",
                wl.pos,
            )

        # Bind the index variable and interpret the body.
        iv = self._index_avalue(info)
        body_env = dict(env)
        body_env[wl.generator.var] = iv
        body = self.eval(op.body, body_env)

        if kind == "modarray":
            return frame
        if kind == "genarray":
            if frame is None:
                return AValue(kind="array")
            if body.is_array and body.rank is not None \
                    and frame.extents is not None and body.extents:
                return AValue.array(frame.extents + body.extents)
            result = frame
            # Integer element tracking (e.g. the `unit` vectors): the
            # elements are the body values joined with the default 0 of
            # uncovered positions.
            if body.is_scalar and body.sval is not None \
                    and frame.rank == 1:
                elems = body.sval.join(Interval.point(0))
                return AValue(kind="array", rank=1, extents=frame.extents,
                              uniform=elems)
            return result
        # fold: result has the cell type of body/neutral; stay coarse.
        if body.is_scalar:
            return AValue.scalar()
        return UNKNOWN

    def _frame_from_shape_vector(self, shp: AValue) -> AValue:
        if not shp.is_array:
            if shp.is_scalar:  # genarray(n, v) — rank-1 frame
                ext = (shp.sval.lo if shp.sval and shp.sval.is_point
                       else None)
                return AValue(kind="array", rank=1, extents=(ext,))
            return AValue(kind="array")
        n = shp.vlen
        if n is None:
            return AValue(kind="array",
                          owner=self._fresh_owner("genarray"))
        extents = []
        for i in range(n):
            c = shp.comp(i)
            extents.append(c.lo if c.is_point else None)
        return AValue.array(tuple(extents))

    def _resolve_generator(self, wl: WithLoop, kind: str,
                           fold_fun: Optional[str],
                           frame: Optional[AValue],
                           env: dict) -> WithLoopInfo:
        gen = wl.generator
        rank = frame.rank if frame is not None else None

        def bound(expr, is_upper: bool):
            """-> (comps, uniform, length) with inclusive normalization
            still pending."""
            if isinstance(expr, Dot):
                if frame is None:
                    return None, TOP, None
                if frame.extents is not None:
                    if is_upper:
                        comps = tuple(
                            Interval.point(e.sub(Affine.of(1)))
                            if e is not None else TOP
                            for e in frame.extents)
                    else:
                        comps = tuple(Interval.point(0)
                                      for _ in frame.extents)
                    return comps, None, len(frame.extents)
                ext = frame.extent(0)  # '*' symbol when owner known
                if is_upper:
                    uni = (Interval.point(ext.sub(Affine.of(1)))
                           if ext is not None else TOP)
                else:
                    uni = Interval.point(0)
                return None, uni, None
            v = self.eval(expr, env)
            if v.is_scalar:
                return None, v.sval or TOP, None
            if v.is_array and v.rank == 1:
                if v.comps is not None:
                    return v.comps, None, len(v.comps)
                return None, v.uniform or TOP, v.vlen
            return None, TOP, None

        lo_c, lo_u, lo_len = bound(gen.lower, False)
        hi_c, hi_u, hi_len = bound(gen.upper, True)

        one = Interval.point(1)
        if not gen.lower_inclusive:
            lo_c = tuple(c.add(one) for c in lo_c) if lo_c else lo_c
            lo_u = lo_u.add(one) if lo_u is not None else None
        if not gen.upper_inclusive:
            hi_c = tuple(c.sub(one) for c in hi_c) if hi_c else hi_c
            hi_u = hi_u.sub(one) if hi_u is not None else None

        # Generator rank: bound vector lengths, else the frame rank.
        glen = lo_len if lo_len is not None else hi_len
        if glen is not None:
            rank = glen
        if lo_c is not None and hi_c is not None \
                and len(lo_c) != len(hi_c):
            rank = None  # partition checker reports SAC205

        def consts(expr) -> tuple[Optional[int], ...]:
            if expr is None:
                return ()
            v = self.eval(expr, env)
            n = rank or 1
            if v.is_scalar:
                k = v.sval.const_value if v.sval else None
                return (k,) * n
            if v.is_array and v.comps is not None:
                return tuple(c.const_value for c in v.comps)
            return (None,) * n

        return WithLoopInfo(
            wl=wl, function=self._fname, kind=kind, fold_fun=fold_fun,
            frame=frame, rank=rank, lower=lo_c, upper=hi_c,
            u_lower=lo_u, u_upper=hi_u,
            step=consts(gen.step), width=consts(gen.width),
            dot_lower=isinstance(gen.lower, Dot),
            dot_upper=isinstance(gen.upper, Dot),
            lower_len=lo_len, upper_len=hi_len,
            env=dict(env),
        )

    def _index_avalue(self, info: WithLoopInfo) -> AValue:
        """Abstract value of the index variable over the whole space."""
        def span(lo: Interval, hi: Interval) -> Interval:
            return Interval(lo.lo, hi.hi)

        if info.lower is not None and info.upper is not None \
                and len(info.lower) == len(info.upper):
            comps = tuple(span(lo, hi)
                          for lo, hi in zip(info.lower, info.upper))
            return AValue.int_vector(Affine.of(len(comps)), comps=comps)
        lo = info.u_lower if info.u_lower is not None else (
            _hull(info.lower) or TOP)
        hi = info.u_upper if info.u_upper is not None else (
            _hull(info.upper) or TOP)
        length = Affine.of(info.rank) if info.rank is not None else None
        return AValue.int_vector(length, uniform=span(lo, hi))


# ---------------------------------------------------------------------------
# Small helpers and the builtin evaluation table.
# ---------------------------------------------------------------------------

def _collect_assigned(block: Block, out: set[str]) -> None:
    for stmt in block.statements:
        if isinstance(stmt, Assign):
            out.add(stmt.target)
        elif isinstance(stmt, Block):
            _collect_assigned(stmt, out)
        elif isinstance(stmt, If):
            _collect_assigned(stmt.then, out)
            if stmt.orelse is not None:
                _collect_assigned(stmt.orelse, out)
        elif isinstance(stmt, (While, DoWhile)):
            _collect_assigned(stmt.body, out)
        elif isinstance(stmt, For):
            out.add(stmt.init.target)
            out.add(stmt.update.target)
            _collect_assigned(stmt.body, out)


def _hull(comps: Optional[tuple[Interval, ...]]) -> Optional[Interval]:
    if not comps:
        return None
    out = comps[0]
    for c in comps[1:]:
        out = out.join(c)
    return out


def _div_const(c: Interval, k: int) -> Interval:
    lo = c.lo.const // k if c.lo is not None and c.lo.is_const else None
    hi = c.hi.const // k if c.hi is not None and c.hi.is_const else None
    return Interval(Affine.of(lo) if lo is not None else None,
                    Affine.of(hi) if hi is not None else None)


def _map_values(v: AValue, fn) -> AValue:
    if v.is_scalar:
        return AValue.scalar(fn(v.sval) if v.sval is not None else None)
    if v.is_array:
        comps = tuple(fn(c) for c in v.comps) if v.comps else None
        uniform = fn(v.uniform) if v.uniform is not None else None
        return AValue(kind="array", rank=v.rank, extents=v.extents,
                      owner=v.owner, comps=comps, uniform=uniform)
    return UNKNOWN


def _abs_interval(c: Interval) -> Interval:
    if c.lo is not None and c.lo.always_nonneg():
        return c
    if c.hi is not None and c.hi.neg().always_nonneg():
        return c.neg()
    los = c.lo.const if c.lo is not None and c.lo.is_const else None
    his = c.hi.const if c.hi is not None and c.hi.is_const else None
    if los is not None and his is not None:
        return Interval(Affine.of(0), Affine.of(max(abs(los), abs(his))))
    return Interval(Affine.of(0), None)


def _bi_shape(an: ShapeAnalyzer, args: list[AValue]) -> AValue:
    (a,) = args if len(args) == 1 else (UNKNOWN,)
    if not a.is_array:
        if a.is_scalar:
            return AValue.int_vector(Affine.of(0), comps=())
        return AValue.int_vector(None)
    if a.extents is not None:
        comps = tuple(
            Interval.point(e) if e is not None else Interval(Affine.of(0),
                                                             None)
            for e in a.extents)
        return AValue.int_vector(Affine.of(len(comps)), comps=comps)
    if a.owner is not None:
        ext = Affine.sym(("ext", a.owner, "*"))
        return AValue.int_vector(None, uniform=Interval.point(ext))
    return AValue.int_vector(None, uniform=Interval(Affine.of(0), None))


def _bi_dim(an: ShapeAnalyzer, args: list[AValue]) -> AValue:
    (a,) = args if len(args) == 1 else (UNKNOWN,)
    if a.is_scalar:
        return AValue.scalar(Interval.point(0))
    if a.is_array and a.rank is not None:
        return AValue.scalar(Interval.point(a.rank))
    return AValue.scalar(Interval(Affine.of(0), None))


def _bi_sum(an: ShapeAnalyzer, args: list[AValue]) -> AValue:
    (a,) = args if len(args) == 1 else (UNKNOWN,)
    if a.is_scalar:
        return a
    if a.is_array and a.comps is not None:
        total = Interval.point(0)
        for c in a.comps:
            total = total.add(c)
        return AValue.scalar(total)
    return AValue.scalar()


def _bi_abs(an: ShapeAnalyzer, args: list[AValue]) -> AValue:
    (a,) = args if len(args) == 1 else (UNKNOWN,)
    return _map_values(a, _abs_interval)


def _bi_elementwise_shape(an: ShapeAnalyzer, args: list[AValue]) -> AValue:
    for a in args:
        if a.is_array:
            return AValue(kind="array", rank=a.rank, extents=a.extents,
                          owner=a.owner)
    return AValue.scalar()


_BUILTIN_EVAL: dict[str, Callable] = {
    "shape": _bi_shape,
    "dim": _bi_dim,
    "sum": _bi_sum,
    "prod": lambda an, args: (AValue.scalar() if args and
                              args[0].is_scalar else AValue.scalar()),
    "abs": _bi_abs,
    "min": _bi_elementwise_shape,
    "max": _bi_elementwise_shape,
    "sqrt": _bi_elementwise_shape,
    "tod": _bi_elementwise_shape,
    "toi": _bi_elementwise_shape,
}

assert all(is_builtin(n) for n in _BUILTIN_EVAL)
