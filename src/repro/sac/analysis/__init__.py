"""Static analysis for SAC programs.

A dataflow framework (CFG, reaching definitions, liveness, def-use
chains) plus five analysis passes over it and the abstract shape
interpreter:

* shape inference and halo checking (``SAC1xx``),
* WITH-loop partition checking (``SAC2xx``),
* SPMD race certification (``SAC3xx``),
* dataflow lints (``SAC4xx``),
* memory-effects, aliasing and in-place-reuse certification
  (``SAC5xx``) — the certificates the ``ipup`` pass hands to codegen.

Entry points: :func:`analyze_source` / :func:`analyze_file` /
:func:`analyze_program`, or ``python -m repro.sac.analysis file.sac``.
See ``docs/ANALYSIS.md`` for the error-code catalogue.
"""

from ..diagnostics import (
    CODE_CATALOGUE,
    Diagnostic,
    Severity,
    render_json,
    render_sarif,
    render_text,
)
from .cfg import CFG, Action, BasicBlock, build_cfg, free_vars
from .dataflow import (
    DataflowAnalysis,
    DefSite,
    def_use_chains,
    liveness,
    must_defined,
    reaching_definitions,
    solve,
)
from .driver import (
    AnalysisOptions,
    AnalysisReport,
    analyze_file,
    analyze_program,
    analyze_source,
)
from .alias import AliasAnalysis, AliasPairs
from .effects import (
    EffectsAnalysis,
    FunctionSummary,
    ParamRead,
    ReadKind,
    VarRead,
    alias_sources,
)
from .races import LoopCertificate, SAFE_FOLD_FUNCTIONS
from .reuse import ReuseCertificate, certify_function, certify_program
from .shapes import Affine, AValue, Interval, ShapeAnalyzer, WithLoopInfo

__all__ = [
    # diagnostics
    "Diagnostic",
    "Severity",
    "CODE_CATALOGUE",
    "render_text",
    "render_json",
    "render_sarif",
    # dataflow framework
    "CFG",
    "Action",
    "BasicBlock",
    "build_cfg",
    "free_vars",
    "DataflowAnalysis",
    "DefSite",
    "solve",
    "reaching_definitions",
    "must_defined",
    "liveness",
    "def_use_chains",
    # abstract domain
    "Affine",
    "Interval",
    "AValue",
    "ShapeAnalyzer",
    "WithLoopInfo",
    # race certification
    "LoopCertificate",
    "SAFE_FOLD_FUNCTIONS",
    # effects / aliasing / reuse
    "ReadKind",
    "VarRead",
    "ParamRead",
    "FunctionSummary",
    "EffectsAnalysis",
    "alias_sources",
    "AliasAnalysis",
    "AliasPairs",
    "ReuseCertificate",
    "certify_function",
    "certify_program",
    # driver
    "AnalysisOptions",
    "AnalysisReport",
    "analyze_program",
    "analyze_source",
    "analyze_file",
]
