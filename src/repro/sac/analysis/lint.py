"""Dataflow-backed lints (``SAC4xx``).

These are the direct clients of the CFG/dataflow framework:

* **SAC401** — an assignment whose value is never read (per def-use
  chains over reaching definitions).  Parameters are exempt: an unused
  parameter may be required by overload arity.
* **SAC402** — statements that can never execute (CFG blocks unreachable
  from the entry, e.g. code after a ``return``).
* **SAC403** — a variable read where it is *maybe* but not *must*
  defined (assigned on some path only).  Reads with no reaching
  definition at all are left to the typechecker (SAC002) — this lint
  covers the gap where the typechecker's may-analysis accepts the
  program but a path exists on which the variable is unbound.
* **SAC404** — a WITH-loop generator variable shadowing a parameter or
  assigned variable of the enclosing function.
* **SAC405** — the body of a WITH-loop reads the very array the loop's
  result is bound to, at something other than the current index
  (``a = with (...) modarray(a, a[iv - 1] ...)``).  The old and new
  value of ``a`` must then coexist, which silently forbids the
  in-place update the rebinding suggests — the self-dependence the
  runtime only discovers when its alias guard fires.  A pure
  point-read (``a[iv]``) is exempt: it is the reuse-friendly
  accumulate idiom.

All are warnings.
"""

from __future__ import annotations

from typing import Callable

from ..ast_nodes import (
    Assign,
    BinOp,
    Block,
    Call,
    DoWhile,
    Expr,
    ExprStmt,
    FoldOp,
    For,
    FunDef,
    GenarrayOp,
    If,
    ModarrayOp,
    Program,
    Return,
    Select,
    Stmt,
    UnOp,
    Var,
    VectorLit,
    While,
    WithLoop,
)
from .cfg import build_cfg
from .dataflow import def_use_chains, must_defined, reaching_definitions

__all__ = ["lint_function", "lint_program"]


def lint_program(program: Program, sink: Callable) -> None:
    for fun in program.functions:
        lint_function(fun, sink)


def lint_function(fun: FunDef, sink: Callable) -> None:
    """Run all SAC4xx lints over one function.

    ``sink(code, message, pos, function)`` receives the findings.
    """
    cfg = build_cfg(fun)
    reachable = cfg.reachable()
    _lint_unreachable(fun, cfg, reachable, sink)
    _lint_unused(fun, cfg, reachable, sink)
    _lint_maybe_uninitialized(fun, cfg, reachable, sink)
    _lint_shadowing(fun, sink)
    _lint_self_dependence(fun, sink)


# -- SAC402 -----------------------------------------------------------------

def _lint_unreachable(fun: FunDef, cfg, reachable, sink) -> None:
    for block in cfg.blocks:
        if block.id in reachable or not block.actions:
            continue
        act = block.actions[0]
        sink("SAC402", "statement is unreachable", act.pos, fun.name)


# -- SAC401 -----------------------------------------------------------------

def _lint_unused(fun: FunDef, cfg, reachable, sink) -> None:
    chains = def_use_chains(cfg)
    for site, uses in chains.items():
        if site.block == -1:  # parameter pseudo-definition
            continue
        if site.block not in reachable:
            continue  # already covered by SAC402
        if uses:
            continue
        act = cfg.blocks[site.block].actions[site.index]
        sink(
            "SAC401",
            f"value assigned to '{site.var}' is never used",
            act.pos, fun.name,
        )


# -- SAC403 -----------------------------------------------------------------

def _lint_maybe_uninitialized(fun: FunDef, cfg, reachable, sink) -> None:
    must = must_defined(cfg)
    reaching = reaching_definitions(cfg)
    reported: set[str] = set()
    for block in cfg.blocks:
        if block.id not in reachable:
            continue
        defined = set(must[block.id][0])
        maybe = {d.var for d in reaching[block.id][0]}
        for act in block.actions:
            for name in sorted(act.uses):
                if name in defined or name in reported:
                    continue
                if name not in maybe:
                    continue  # no def at all: typecheck reports SAC002
                reported.add(name)
                sink(
                    "SAC403",
                    f"'{name}' may be uninitialized here (assigned on "
                    f"some paths only)",
                    act.pos, fun.name,
                )
            if act.defines is not None:
                defined.add(act.defines)
                maybe.add(act.defines)


# -- SAC404 -----------------------------------------------------------------

def _lint_shadowing(fun: FunDef, sink) -> None:
    outer = {p.name for p in fun.params}
    _collect_targets(fun.body, outer)

    def walk_expr(expr: Expr) -> None:
        if isinstance(expr, WithLoop):
            gen = expr.generator
            if gen.var in outer:
                sink(
                    "SAC404",
                    f"generator variable '{gen.var}' shadows an outer "
                    f"binding",
                    gen.pos or expr.pos, fun.name,
                )
            for b in (gen.lower, gen.upper, gen.step, gen.width):
                if b is not None:
                    walk_expr(b)
            op = expr.operation
            if isinstance(op, GenarrayOp):
                walk_expr(op.shape)
                walk_expr(op.body)
            elif isinstance(op, ModarrayOp):
                walk_expr(op.array)
                walk_expr(op.body)
            elif isinstance(op, FoldOp):
                walk_expr(op.neutral)
                walk_expr(op.body)
        elif isinstance(expr, BinOp):
            walk_expr(expr.left)
            walk_expr(expr.right)
        elif isinstance(expr, UnOp):
            walk_expr(expr.operand)
        elif isinstance(expr, Select):
            walk_expr(expr.array)
            walk_expr(expr.index)
        elif isinstance(expr, Call):
            for a in expr.args:
                walk_expr(a)
        elif isinstance(expr, VectorLit):
            for e in expr.elements:
                walk_expr(e)

    def walk_stmt(stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            walk_expr(stmt.value)
        elif isinstance(stmt, Return):
            walk_expr(stmt.value)
        elif isinstance(stmt, ExprStmt):
            walk_expr(stmt.expr)
        elif isinstance(stmt, Block):
            for s in stmt.statements:
                walk_stmt(s)
        elif isinstance(stmt, If):
            walk_expr(stmt.cond)
            walk_stmt(stmt.then)
            if stmt.orelse is not None:
                walk_stmt(stmt.orelse)
        elif isinstance(stmt, (While, DoWhile)):
            walk_expr(stmt.cond)
            walk_stmt(stmt.body)
        elif isinstance(stmt, For):
            walk_stmt(stmt.init)
            walk_expr(stmt.cond)
            walk_stmt(stmt.body)
            walk_stmt(stmt.update)

    walk_stmt(fun.body)


# -- SAC405 -----------------------------------------------------------------

def _lint_self_dependence(fun: FunDef, sink) -> None:
    """Warn when ``t = with (...) op`` reads ``t`` in the loop body at
    anything but the current index."""

    def body_reads_target(expr: Expr, target: str, gen_var: str) -> bool:
        if isinstance(expr, Select) and isinstance(expr.array, Var) \
                and expr.array.name == target:
            idx = expr.index
            if not (isinstance(idx, Var) and idx.name == gen_var):
                return True
            return body_reads_target(idx, target, gen_var)
        if isinstance(expr, Var):
            return expr.name == target
        if isinstance(expr, WithLoop):
            gen = expr.generator
            for b in (gen.lower, gen.upper, gen.step, gen.width):
                if b is not None \
                        and body_reads_target(b, target, gen_var):
                    return True
            op = expr.operation
            parts = ((op.shape,) if isinstance(op, GenarrayOp)
                     else (op.array,) if isinstance(op, ModarrayOp)
                     else (op.neutral,))
            return any(body_reads_target(p, target, gen_var)
                       for p in parts + (op.body,))
        children = (
            (expr.left, expr.right) if isinstance(expr, BinOp)
            else (expr.operand,) if isinstance(expr, UnOp)
            else (expr.array, expr.index) if isinstance(expr, Select)
            else expr.args if isinstance(expr, Call)
            else expr.elements if isinstance(expr, VectorLit)
            else ()
        )
        return any(body_reads_target(c, target, gen_var)
                   for c in children)

    def check_assign(stmt: Assign) -> None:
        if not isinstance(stmt.value, WithLoop):
            return
        wl = stmt.value
        if body_reads_target(wl.operation.body, stmt.target,
                             wl.generator.var):
            sink(
                "SAC405",
                f"WITH-loop body reads '{stmt.target}', the array its "
                f"result rebinds, at a non-identity index; the old "
                f"value stays live and blocks in-place reuse",
                wl.pos, fun.name,
            )

    def walk_stmt(stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            check_assign(stmt)
        elif isinstance(stmt, Block):
            for s in stmt.statements:
                walk_stmt(s)
        elif isinstance(stmt, If):
            walk_stmt(stmt.then)
            if stmt.orelse is not None:
                walk_stmt(stmt.orelse)
        elif isinstance(stmt, (While, DoWhile)):
            walk_stmt(stmt.body)
        elif isinstance(stmt, For):
            check_assign(stmt.init)
            walk_stmt(stmt.body)
            check_assign(stmt.update)

    walk_stmt(fun.body)


def _collect_targets(block: Block, out: set[str]) -> None:
    for stmt in block.statements:
        if isinstance(stmt, Assign):
            out.add(stmt.target)
        elif isinstance(stmt, Block):
            _collect_targets(stmt, out)
        elif isinstance(stmt, If):
            _collect_targets(stmt.then, out)
            if stmt.orelse is not None:
                _collect_targets(stmt.orelse, out)
        elif isinstance(stmt, (While, DoWhile)):
            _collect_targets(stmt.body, out)
        elif isinstance(stmt, For):
            out.add(stmt.init.target)
            out.add(stmt.update.target)
            _collect_targets(stmt.body, out)
