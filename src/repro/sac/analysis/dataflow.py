"""Worklist dataflow over :mod:`repro.sac.analysis.cfg`.

A small, classic framework: an analysis supplies its direction, the
initial/boundary states, a join, and a per-block transfer function; the
solver iterates a worklist to the fixed point.  Three standard analyses
are provided —

* **reaching definitions** (forward, may): which ``Assign`` actions can
  reach each program point; the basis of def-use chains,
* **must-defined** (forward, must): variables definitely assigned on
  every path; the basis of the maybe-uninitialized lint,
* **liveness** (backward, may): variables whose current value may still
  be read; the basis of the unused-assignment lint.

States are frozensets so transfer functions stay pure.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cfg import CFG, Action

__all__ = [
    "DataflowAnalysis",
    "solve",
    "DefSite",
    "reaching_definitions",
    "must_defined",
    "liveness",
    "def_use_chains",
]


class DataflowAnalysis:
    """Interface of one dataflow problem over frozenset states."""

    #: "forward" or "backward".
    direction = "forward"

    def boundary(self, cfg: CFG) -> frozenset:
        """State at the entry (forward) / exit (backward) block."""
        return frozenset()

    def initial(self, cfg: CFG) -> frozenset:
        """Optimistic initial state of every other block."""
        return frozenset()

    def join(self, states: list[frozenset]) -> frozenset:
        """Confluence operator (default: union / may-analysis)."""
        out: frozenset = frozenset()
        for s in states:
            out = out | s
        return out

    def transfer(self, block_id: int, actions: list[Action],
                 state: frozenset) -> frozenset:
        raise NotImplementedError


def solve(cfg: CFG, analysis: DataflowAnalysis) -> dict[int, tuple]:
    """Fixed point of ``analysis`` over ``cfg``.

    Returns ``{block_id: (state_in, state_out)}`` in the direction of the
    analysis (for backward analyses ``state_in`` is the state at block
    *exit* — the analysis' own input).
    """
    forward = analysis.direction == "forward"
    blocks = cfg.blocks
    if forward:
        edges_in = {b.id: b.preds for b in blocks}
        start = cfg.entry
    else:
        edges_in = {b.id: b.succs for b in blocks}
        start = cfg.exit

    state_in: dict[int, frozenset] = {
        b.id: analysis.initial(cfg) for b in blocks
    }
    state_out: dict[int, frozenset] = {}
    state_in[start] = analysis.boundary(cfg)

    actions_of = {
        b.id: (b.actions if forward else list(reversed(b.actions)))
        for b in blocks
    }
    for b in blocks:
        state_out[b.id] = analysis.transfer(b.id, actions_of[b.id],
                                            state_in[b.id])

    work = [b.id for b in blocks]
    while work:
        bid = work.pop(0)
        preds = edges_in[bid]
        if preds:
            new_in = analysis.join([state_out[p] for p in preds])
            if bid == start:
                new_in = analysis.join([new_in, analysis.boundary(cfg)])
        else:
            new_in = (analysis.boundary(cfg) if bid == start
                      else analysis.initial(cfg))
        new_out = analysis.transfer(bid, actions_of[bid], new_in)
        if new_in != state_in[bid] or new_out != state_out[bid]:
            state_in[bid] = new_in
            state_out[bid] = new_out
            next_edges = (blocks[bid].succs if forward
                          else blocks[bid].preds)
            for nxt in next_edges:
                if nxt not in work:
                    work.append(nxt)
    return {b.id: (state_in[b.id], state_out[b.id]) for b in blocks}


# ---------------------------------------------------------------------------
# Reaching definitions and def-use chains.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DefSite:
    """One definition: the action at ``(block, index)`` assigning ``var``.

    ``block == -1`` marks parameter pseudo-definitions at function entry.
    """

    block: int
    index: int
    var: str


class _ReachingDefs(DataflowAnalysis):
    direction = "forward"

    def __init__(self, params: tuple[str, ...]):
        self._params = params

    def boundary(self, cfg: CFG) -> frozenset:
        return frozenset(DefSite(-1, i, p)
                         for i, p in enumerate(self._params))

    def transfer(self, block_id, actions, state):
        defs = set(state)
        for i, act in enumerate(actions):
            if act.defines is not None:
                defs = {d for d in defs if d.var != act.defines}
                defs.add(DefSite(block_id, i, act.defines))
        return frozenset(defs)


def reaching_definitions(cfg: CFG) -> dict[int, tuple]:
    params = tuple(p.name for p in cfg.fun.params)
    return solve(cfg, _ReachingDefs(params))


def def_use_chains(cfg: CFG) -> dict[DefSite, list[tuple[int, int]]]:
    """Map each definition to the ``(block, action)`` sites that read it.

    Parameter pseudo-definitions are included (block -1), so unused
    parameters are distinguishable from unused assignments.
    """
    solved = reaching_definitions(cfg)
    chains: dict[DefSite, list[tuple[int, int]]] = {}
    params = tuple(p.name for p in cfg.fun.params)
    for i, p in enumerate(params):
        chains[DefSite(-1, i, p)] = []
    for block in cfg.blocks:
        live_defs = set(solved[block.id][0])
        for i, act in enumerate(block.actions):
            for name in act.uses:
                for d in live_defs:
                    if d.var == name:
                        chains.setdefault(d, []).append((block.id, i))
            if act.defines is not None:
                live_defs = {d for d in live_defs if d.var != act.defines}
                d = DefSite(block.id, i, act.defines)
                live_defs.add(d)
                chains.setdefault(d, [])
    return chains


# ---------------------------------------------------------------------------
# Must-defined (definite assignment).
# ---------------------------------------------------------------------------

_ALL = None  # sentinel: the universal set (top of the must-lattice)


class _MustDefined(DataflowAnalysis):
    direction = "forward"

    def boundary(self, cfg: CFG) -> frozenset:
        return frozenset(p.name for p in cfg.fun.params)

    def initial(self, cfg: CFG) -> frozenset:
        # Optimistic top: "everything defined"; modelled as the set of
        # all names occurring in the function.
        names = set(p.name for p in cfg.fun.params)
        for b in cfg.blocks:
            for act in b.actions:
                names |= act.uses
                if act.defines:
                    names.add(act.defines)
        return frozenset(names)

    def join(self, states):
        out = None
        for s in states:
            out = s if out is None else (out & s)
        return out if out is not None else frozenset()

    def transfer(self, block_id, actions, state):
        defined = set(state)
        for act in actions:
            if act.defines is not None:
                defined.add(act.defines)
        return frozenset(defined)


def must_defined(cfg: CFG) -> dict[int, tuple]:
    """Definitely-assigned variables at each block boundary."""
    return solve(cfg, _MustDefined())


# ---------------------------------------------------------------------------
# Liveness.
# ---------------------------------------------------------------------------

class _Liveness(DataflowAnalysis):
    direction = "backward"

    def transfer(self, block_id, actions, state):
        live = set(state)
        # actions arrive reversed (backward direction).
        for act in actions:
            if act.defines is not None:
                live.discard(act.defines)
            live |= act.uses
        return frozenset(live)


def liveness(cfg: CFG) -> dict[int, tuple]:
    """Live variables; key maps to (live-out, live-in) per block."""
    return solve(cfg, _Liveness())
