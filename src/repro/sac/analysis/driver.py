"""Orchestration of the static-analysis passes.

:func:`analyze_program` runs, in order:

1. the front-end semantic checks (``SAC0xx``, via
   :func:`repro.sac.typecheck.collect_diagnostics`) — if these produce
   errors the deeper passes are skipped, since their abstract
   interpretation assumes a well-formed program;
2. the abstract shape pass (``SAC1xx``) with the partition (``SAC2xx``)
   and race (``SAC3xx``) listeners attached;
3. the dataflow lints (``SAC4xx``);
4. the memory-effects/alias/reuse certification (``SAC5xx``), fed the
   WITH-loop facts the shape pass already collected so the abstract
   interpretation runs once, not twice.

Findings are deduplicated (inline expansion can visit the same helper
from several call sites) and sorted by source position.  The result is
an :class:`AnalysisReport` bundling the diagnostics and the per-loop
SPMD certificates.

:func:`analyze_source`/:func:`analyze_file` additionally parse (mapping
syntax failures to a single ``SAC001`` diagnostic) and link the prelude
so stdlib calls resolve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..ast_nodes import Program
from ..diagnostics import Diagnostic, Severity, has_errors
from ..errors import SacSyntaxError
from ..parser import parse_program
from ..stdlib import load_prelude
from .lint import lint_program
from .partition import PartitionChecker
from .races import LoopCertificate, RaceChecker
from .reuse import ReuseCertificate, certify_program
from .shapes import ShapeAnalyzer

__all__ = ["AnalysisOptions", "AnalysisReport", "analyze_program",
           "analyze_source", "analyze_file"]


@dataclass(frozen=True)
class AnalysisOptions:
    """Which passes to run and how to judge the outcome."""

    #: Link the stdlib prelude before analyzing (analyze_source/file).
    include_prelude: bool = True
    #: Also analyze the prelude's own functions (off: only report
    #: findings located in the user program).
    report_prelude: bool = True
    #: Run the abstract shape/partition/race passes.
    shapes: bool = True
    #: Run the SAC4xx dataflow lints.
    lint: bool = True
    #: Run the SAC5xx effects/alias/reuse certification.
    reuse: bool = True
    #: Findings at or above this severity make the report "failed".
    fail_on: Severity = Severity.ERROR


@dataclass
class AnalysisReport:
    """All findings and certificates from one analysis run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    certificates: list[LoopCertificate] = field(default_factory=list)
    reuse_certificates: list["ReuseCertificate"] = field(
        default_factory=list)
    fail_on: Severity = Severity.ERROR

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        return not any(d.severity >= self.fail_on
                       for d in self.diagnostics)

    @property
    def spmd_safe(self) -> bool:
        """True when every WITH-loop seen was certified race-free."""
        return all(c.safe for c in self.certificates)


def analyze_program(program: Program,
                    options: AnalysisOptions | None = None
                    ) -> AnalysisReport:
    """Run the full pass stack over an already-parsed program."""
    options = options or AnalysisOptions()
    report = AnalysisReport(fail_on=options.fail_on)
    sink = report.diagnostics.append

    from ..typecheck import collect_diagnostics

    front = collect_diagnostics(program)
    report.diagnostics.extend(front)
    if has_errors(front):
        _finish(report)
        return report

    def coded_sink(code, message, pos, function):
        sink(Diagnostic.make(code, message, pos, function))

    infos = None
    if options.shapes:
        races = RaceChecker(coded_sink)
        infos = []
        analyzer = ShapeAnalyzer(
            program, sink,
            listeners=(PartitionChecker(coded_sink), races,
                       infos.append),
        )
        analyzer.analyze_program()
        report.certificates = races.certificates
    if options.lint:
        lint_program(program, coded_sink)
    if options.reuse:
        report.reuse_certificates = certify_program(
            program, coded_sink, infos=infos)
    _finish(report)
    return report


def analyze_source(source: str, filename: str = "<sac>",
                   options: AnalysisOptions | None = None
                   ) -> AnalysisReport:
    """Parse, link the prelude, and analyze one source text."""
    options = options or AnalysisOptions()
    try:
        program = parse_program(source, filename)
    except SacSyntaxError as exc:
        report = AnalysisReport(fail_on=options.fail_on)
        report.diagnostics.append(
            Diagnostic.make("SAC001", str(exc.message), exc.pos))
        return report
    if options.include_prelude:
        prelude = load_prelude()
        program = Program(tuple(prelude.functions)
                          + tuple(program.functions),
                          pos=program.pos)
        if not options.report_prelude:
            prelude_names = {f.name for f in prelude.functions}
            full = analyze_program(program, options)
            full.diagnostics = [
                d for d in full.diagnostics
                if d.pos is None or d.pos.filename == filename
            ]
            full.certificates = [
                c for c in full.certificates
                if c.function not in prelude_names
            ]
            full.reuse_certificates = [
                c for c in full.reuse_certificates
                if c.function not in prelude_names
            ]
            return full
    return analyze_program(program, options)


def analyze_file(path: str | Path,
                 options: AnalysisOptions | None = None) -> AnalysisReport:
    path = Path(path)
    return analyze_source(path.read_text(), str(path), options)


def _finish(report: AnalysisReport) -> None:
    """Dedupe (inline expansion revisits helpers) and sort by position."""
    seen = set()
    unique = []
    for d in report.diagnostics:
        key = (d.code, d.message,
               None if d.pos is None
               else (d.pos.filename, d.pos.line, d.pos.col))
        if key in seen:
            continue
        seen.add(key)
        unique.append(d)
    unique.sort(key=lambda d: (
        (d.pos.filename, d.pos.line, d.pos.col) if d.pos
        else ("￿", 0, 0),
        d.code,
    ))
    report.diagnostics = unique
