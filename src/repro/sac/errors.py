"""Diagnostics for the SAC front end and runtime."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "SourcePos",
    "SacError",
    "SacSyntaxError",
    "SacTypeError",
    "SacNameError",
    "SacRuntimeError",
    "SacArityError",
    "SacAnalysisError",
    "SacOptionError",
]


@dataclass(frozen=True)
class SourcePos:
    """Line/column position in a SAC source file (1-based)."""

    line: int
    col: int
    filename: str = "<sac>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.col}"


class SacError(Exception):
    """Base class of all SAC language errors."""

    def __init__(self, message: str, pos: SourcePos | None = None):
        self.message = message
        self.pos = pos
        super().__init__(f"{pos}: {message}" if pos else message)


class SacSyntaxError(SacError):
    """Lexical or syntactic error."""


class SacTypeError(SacError):
    """Type or shape error (statically detected or at run time)."""


class SacNameError(SacError):
    """Reference to an unknown variable or function."""


class SacArityError(SacError):
    """Call with a number of arguments no overload accepts."""


class SacRuntimeError(SacError):
    """Error raised while evaluating a SAC program."""


class SacOptionError(SacError):
    """Invalid compiler configuration (e.g. an unknown pass name).

    Carries the catalogue ``code`` (``SAC010``) so harnesses can match
    on it like any other coded diagnostic.
    """

    def __init__(self, message: str, code: str = "SAC010",
                 pos: SourcePos | None = None):
        super().__init__(f"[{code}] {message}", pos)
        self.code = code


class SacAnalysisError(SacError):
    """Static analysis found error-severity diagnostics.

    Carries the offending findings on ``diagnostics`` (a list of
    :class:`repro.sac.diagnostics.Diagnostic`).
    """

    def __init__(self, message: str, diagnostics=(),
                 pos: SourcePos | None = None):
        super().__init__(message, pos)
        self.diagnostics = list(diagnostics)
