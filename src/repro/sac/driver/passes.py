"""Declarative, instrumented pass management.

The optimization pipeline used to be a hardwired ``if``-chain in
:mod:`repro.sac.optim.pipeline`.  Here the same passes are *registered*
as :class:`PassSpec` entries — a name, the rewrite function, and the
artifacts a rewrite invalidates — and executed by a :class:`PassManager`
from an explicit schedule.  Schedules are sequences of pass names and
:class:`Fixpoint` groups; a fixpoint group repeats its member passes
until a full round rewrites nothing (the constfold/wlfold and cse/dce
interplays each converge this way).

Every execution is instrumented: wall time, whether the program
changed, and how many function bodies were rewritten, all collected in
a :class:`PassReport` (``repro.harness --pass-report`` renders its
table).  With ``snapshots=True`` the manager additionally keeps
before/after pretty-prints of every changing pass — the compiler
equivalent of ``-v`` tracing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from ..ast_nodes import Program
from ..optim.coeffgroup import coeffgroup_pass
from ..optim.constfold import constfold_pass
from ..optim.cse import cse_pass
from ..optim.dce import dce_pass
from ..optim.inline import inline_pass
from ..optim.ipup import ipup_pass
from ..optim.rewrite import ast_key
from ..optim.unroll import unroll_pass
from ..optim.wlfold import wlfold_pass

__all__ = [
    "PassSpec",
    "Fixpoint",
    "PassExecution",
    "PassReport",
    "PassManager",
    "register_pass",
    "registered_passes",
    "schedule_for",
]


@dataclass(frozen=True)
class PassSpec:
    """One registered rewrite pass.

    ``invalidates`` declares which downstream artifacts can no longer be
    trusted once this pass rewrites the program: ``"analysis"`` (the
    static analyzer's report describes the pre-rewrite WITH-loops) and
    ``"kernels"`` (compiled specializations trace the rewritten
    functions).  The session uses these to decide what must be recomputed
    — and, inversely, the kernel cache keys on the *post*-pipeline
    program digest, so declared invalidations are what make the
    content-addressed keys sound.
    """

    name: str
    fn: Callable[[Program], Program]
    description: str
    invalidates: tuple[str, ...] = ("analysis", "kernels")


@dataclass(frozen=True)
class Fixpoint:
    """A schedule element: repeat ``passes`` until a round changes
    nothing (or ``max_iterations`` rounds have run)."""

    passes: tuple[str, ...]
    max_iterations: int = 8


_REGISTRY: dict[str, PassSpec] = {}


def register_pass(name: str, fn: Callable[[Program], Program],
                  description: str,
                  invalidates: tuple[str, ...] = ("analysis", "kernels"),
                  ) -> PassSpec:
    """Register (or re-register) a pass under ``name``."""
    spec = PassSpec(name, fn, description, invalidates)
    _REGISTRY[name] = spec
    return spec


def registered_passes() -> dict[str, PassSpec]:
    """A snapshot of the registry (name -> spec)."""
    return dict(_REGISTRY)


register_pass("inline", inline_pass,
              "inline library calls to expose WITH-loops at use sites")
register_pass("constfold", constfold_pass,
              "literalize bounds and compile-time-evaluable pure calls")
register_pass("wlfold", wlfold_pass,
              "fuse producer/consumer WITH-loops")
register_pass("unroll", unroll_pass,
              "unroll constant-bounded stencil folds")
register_pass("coeffgroup", coeffgroup_pass,
              "group equal stencil coefficients (27 -> 4 multiplies)")
register_pass("cse", cse_pass,
              "share structurally equal subexpressions")
register_pass("dce", dce_pass,
              "drop assignments made dead by folding")
# Annotation-only: certificates describe the final loop structure, so
# the analysis report stays valid; only compiled kernels must refresh.
register_pass("ipup", ipup_pass,
              "annotate WITH-loops with certified buffer-reuse hints",
              invalidates=("kernels",))


@dataclass(frozen=True)
class PassExecution:
    """Metrics for one run of one pass."""

    name: str
    seconds: float
    rewrites: int  #: function bodies structurally changed by this run
    iteration: int = 0  #: round index within a fixpoint group, else 0

    @property
    def changed(self) -> bool:
        return self.rewrites > 0


@dataclass
class PassReport:
    """Everything the manager observed while running a schedule."""

    executions: list[PassExecution] = field(default_factory=list)
    #: (pass name, before, after) pretty-prints, recorded only for
    #: executions that changed the program and only with snapshots on.
    snapshots: list[tuple[str, str, str]] = field(default_factory=list)

    def runs(self, name: str | None = None) -> int:
        return sum(1 for e in self.executions
                   if name is None or e.name == name)

    def rewrites(self, name: str | None = None) -> int:
        return sum(e.rewrites for e in self.executions
                   if name is None or e.name == name)

    def total_seconds(self) -> float:
        return sum(e.seconds for e in self.executions)

    def format_table(self) -> str:
        """Aggregate per-pass table (runs, wall time, rewrites)."""
        order: list[str] = []
        for e in self.executions:
            if e.name not in order:
                order.append(e.name)
        header = f"{'pass':<12} {'runs':>5} {'time_ms':>9} {'rewrites':>9}"
        rows = [header, "-" * len(header)]
        for name in order:
            ms = sum(e.seconds for e in self.executions
                     if e.name == name) * 1e3
            rows.append(f"{name:<12} {self.runs(name):>5} "
                        f"{ms:>9.2f} {self.rewrites(name):>9}")
        rows.append("-" * len(header))
        rows.append(f"{'total':<12} {self.runs():>5} "
                    f"{self.total_seconds() * 1e3:>9.2f} "
                    f"{self.rewrites():>9}")
        return "\n".join(rows)


def _count_rewrites(before: Program, after: Program) -> int:
    """How many function bodies changed, structurally (position-blind).

    Passes preserve unchanged subtrees by identity *most* of the time,
    but a few rebuild blocks unconditionally, so identity is only the
    fast path; the slow path compares :func:`ast_key` per function.
    """
    if after is before:
        return 0
    old, new = before.functions, after.functions
    if len(old) != len(new):
        return max(len(old), len(new))
    count = 0
    for f_old, f_new in zip(old, new):
        if f_old is f_new:
            continue
        if ast_key(f_old) != ast_key(f_new):
            count += 1
    return count


class PassManager:
    """Run schedules of registered passes with instrumentation.

    One manager can run many schedules; every execution lands in
    :attr:`report`, so a session's report accumulates across stages
    (initial pipeline, later re-optimizations).
    """

    def __init__(self, registry: dict[str, PassSpec] | None = None, *,
                 snapshots: bool = False):
        self.registry = dict(registry) if registry is not None else None
        self.snapshots = snapshots
        self.report = PassReport()

    def _spec(self, name: str) -> PassSpec:
        registry = self.registry if self.registry is not None else _REGISTRY
        try:
            return registry[name]
        except KeyError:
            from ..errors import SacOptionError

            valid = ", ".join(sorted(registry))
            raise SacOptionError(
                f"unknown pass {name!r}; registered passes: {valid}"
            ) from None

    def run_pass(self, program: Program, name: str,
                 iteration: int = 0) -> Program:
        """Run one registered pass, recording metrics (and snapshots)."""
        spec = self._spec(name)
        before_text = None
        if self.snapshots:
            from ..pprint import pprint_program

            before_text = pprint_program(program)
        t0 = time.perf_counter()
        result = spec.fn(program)
        seconds = time.perf_counter() - t0
        rewrites = _count_rewrites(program, result)
        self.report.executions.append(
            PassExecution(name, seconds, rewrites, iteration)
        )
        if self.snapshots and rewrites:
            from ..pprint import pprint_program

            self.report.snapshots.append(
                (name, before_text, pprint_program(result))
            )
        return result if rewrites else program

    def run(self, program: Program,
            schedule: tuple[str | Fixpoint, ...]) -> Program:
        """Run a schedule of pass names and fixpoint groups."""
        for item in schedule:
            if isinstance(item, Fixpoint):
                for round_no in range(item.max_iterations):
                    changed = False
                    for name in item.passes:
                        result = self.run_pass(program, name, round_no)
                        if result is not program:
                            changed = True
                            program = result
                    if not changed:
                        break
            else:
                program = self.run_pass(program, item)
        return program


def schedule_for(options) -> tuple[str | Fixpoint, ...]:
    """Build the schedule a :class:`~repro.sac.optim.pipeline.PassOptions`
    asks for.

    The plain schedule reproduces the historical pipeline order exactly
    (inline, constfold, wlfold, unroll, constfold-again, coeffgroup,
    cse, dce, ipup, each subject to its toggle).  With ``options.fixpoint``
    the interacting pairs run as fixpoint groups instead, so repeated
    folding opportunities exposed by a prior round are taken.
    """
    fix = bool(getattr(options, "fixpoint", False))
    on = {name for name in ("inline", "constfold", "wlfold", "unroll",
                            "coeffgroup", "cse", "dce")
          if getattr(options, name)}

    def group(*names: str) -> tuple[str | Fixpoint, ...]:
        members = tuple(n for n in names if n in on)
        if not members:
            return ()
        if fix and len(members) > 1:
            return (Fixpoint(members),)
        if fix and members == ("constfold",):
            return (Fixpoint(members),)
        return members

    schedule: list[str | Fixpoint] = []
    schedule += group("inline")
    schedule += group("constfold", "wlfold")
    if "unroll" in on:
        schedule += group("unroll")
        # Unrolling exposes per-offset coefficient lookups; fold again.
        schedule += group("constfold")
    schedule += group("coeffgroup")
    schedule += group("cse", "dce")
    # ipup runs last and never joins a fixpoint group: its hints are
    # annotations, not rewrites, and must describe the settled loops.
    if getattr(options, "ipup", False):
        schedule.append("ipup")
    return tuple(schedule)
