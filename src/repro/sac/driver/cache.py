"""Content-addressed cache for compilation artifacts.

Two artifact kinds are cached, both keyed by sha-256 content digests so
a hit can never serve a stale result:

* **programs** — the post-pipeline AST plus its analysis report, keyed
  by :func:`program_key` = digest of (module source, prelude source,
  ``CompileOptions``).  Editing the source, flipping any compile
  option, or upgrading the prelude all change the key, which *is* the
  invalidation.
* **kernels** — :class:`~repro.sac.codegen.KernelArtifact`
  specializations, keyed by :func:`kernel_key` = digest of (program
  digest, overload name, :func:`shape_signature` of the arguments).  A
  new argument shape is a new key; same shape, same program → same
  generated source, so warm loads are bit-identical to cold compiles.

The cache has two layers.  The in-memory layer holds loaded executables
and artifacts for this process.  The on-disk layer (default
``~/.cache/repro-sac``, override with ``REPRO_SAC_CACHE_DIR``, disable
with ``REPRO_SAC_CACHE=off``) holds version-stamped pickles written
atomically (temp file + ``os.replace``), so concurrent writers — e.g.
SPMD ranks warming the same kernel — can never expose a torn entry.
Corrupt or version-stale entries are discarded (and unlinked), never
raised.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "CACHE_VERSION",
    "CacheStats",
    "ProgramEntry",
    "KernelCache",
    "default_cache",
    "source_digest",
    "options_digest",
    "compiler_fingerprint",
    "program_key",
    "shape_signature",
    "kernel_key",
    "reset_default_cache",
]

#: Bump when the pickled entry layout or the compiler's generated-code
#: conventions change; older on-disk entries are then discarded as stale.
CACHE_VERSION = 1

_ENV_DIR = "REPRO_SAC_CACHE_DIR"
_ENV_TOGGLE = "REPRO_SAC_CACHE"


# -- keys --------------------------------------------------------------------


def source_digest(text: str) -> str:
    """Hex digest of a source text."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def options_digest(options) -> str:
    """Hex digest of a (frozen-dataclass) options object.

    ``repr`` of a frozen dataclass lists every field deterministically,
    so any flipped option — optimization toggles, pass overrides, jit
    settings — produces a different digest.
    """
    return hashlib.sha256(repr(options).encode("utf-8")).hexdigest()


_FINGERPRINT: str | None = None


def compiler_fingerprint() -> str:
    """Digest of the compiler's own sources (computed once per process).

    Cache keys must change when the *compiler* changes, not just the
    compiled source: an edited optimization pass silently served last
    week's pipeline output would be a miscompile.  Hashing the package's
    ``.py`` files costs a few milliseconds, once.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        root = Path(__file__).resolve().parent.parent  # repro/sac
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\x00")
            try:
                h.update(path.read_bytes())
            except OSError:
                pass
            h.update(b"\x00")
        _FINGERPRINT = h.hexdigest()
    return _FINGERPRINT


def program_key(src_digest: str, prelude_digest: str, options) -> str:
    """Cache key for an optimized program."""
    h = hashlib.sha256()
    h.update(b"program\x00")
    h.update(compiler_fingerprint().encode())
    h.update(b"\x00")
    h.update(src_digest.encode())
    h.update(b"\x00")
    h.update(prelude_digest.encode())
    h.update(b"\x00")
    h.update(options_digest(options).encode())
    return h.hexdigest()


def shape_signature(args) -> tuple[str, ...]:
    """Canonical signature of a specialization's arguments.

    Mirrors the backend's baking rules: float64 arrays stay symbolic, so
    only their *shape* matters; everything else is baked into the
    generated code, so its *value* matters.
    """
    import numpy as np

    parts: list[str] = []
    for a in args:
        if isinstance(a, np.ndarray):
            if a.dtype == np.float64:
                parts.append(f"f64{list(a.shape)}")
            else:
                digest = hashlib.sha256(a.tobytes()).hexdigest()[:16]
                parts.append(f"baked-arr:{a.dtype}{list(a.shape)}:{digest}")
        else:
            parts.append(f"baked:{type(a).__name__}:{a!r}")
    return tuple(parts)


def kernel_key(program_digest: str, overload: str,
               signature: tuple[str, ...]) -> str:
    """Cache key for one compiled kernel specialization."""
    h = hashlib.sha256()
    h.update(b"kernel\x00")
    h.update(program_digest.encode())
    h.update(b"\x00")
    h.update(overload.encode())
    for part in signature:
        h.update(b"\x00")
        h.update(part.encode())
    return h.hexdigest()


# -- entries -----------------------------------------------------------------


@dataclass(frozen=True)
class ProgramEntry:
    """A cached post-pipeline program and its sidecar artifacts."""

    program: object  #: the optimized :class:`~repro.sac.ast_nodes.Program`
    analysis_report: object = None
    source_digest: str = ""


@dataclass
class CacheStats:
    """Observability: every lookup outcome is counted."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    disk_hits: int = 0
    corrupt_discarded: int = 0
    stale_discarded: int = 0
    #: Discards (corrupt or stale) per cache key.  A key that keeps
    #: being discarded — a corrupt-entry storm — is what the runtime
    #: supervisor's compile circuit breaker trips on, instead of the
    #: cache silently eating the corruption on every lookup.
    discards_by_key: dict = field(default_factory=dict)

    def note_discard(self, key: str, *, stale: bool = False) -> None:
        """Count one discarded entry, globally and per key."""
        if stale:
            self.stale_discarded += 1
        else:
            self.corrupt_discarded += 1
        self.discards_by_key[key] = self.discards_by_key.get(key, 0) + 1

    def snapshot(self) -> dict:
        out = dict(self.__dict__)
        out["discards_by_key"] = dict(self.discards_by_key)
        return out


@dataclass
class _Layer:
    """One artifact namespace (programs or kernels)."""

    name: str
    memory: dict[str, object] = field(default_factory=dict)


# -- the cache ---------------------------------------------------------------


def _default_root() -> Path | None:
    toggle = os.environ.get(_ENV_TOGGLE, "").strip().lower()
    if toggle in ("off", "0", "false", "disabled", "no"):
        return None
    override = os.environ.get(_ENV_DIR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-sac"


class KernelCache:
    """Two-layer (memory + disk) content-addressed artifact cache.

    ``root=None`` with ``memory_only=True`` gives a purely in-process
    cache; otherwise ``root`` defaults to the environment-configured
    location (which may itself disable the disk layer).
    """

    def __init__(self, root: str | Path | None = None, *,
                 memory_only: bool = False):
        if memory_only:
            self.root = None
        elif root is not None:
            self.root = Path(root)
        else:
            self.root = _default_root()
        self.stats = CacheStats()
        self._programs = _Layer("programs")
        self._kernels = _Layer("kernels")  #: key -> KernelArtifact
        self._loaded: dict[str, object] = {}  #: key -> CompiledFunction

    # -- generic layer machinery --------------------------------------------

    def _path(self, layer: _Layer, key: str) -> Path | None:
        if self.root is None:
            return None
        return self.root / f"v{CACHE_VERSION}" / layer.name / key[:2] / key

    def _disk_read(self, layer: _Layer, key: str):
        path = self._path(layer, key)
        if path is None:
            return None
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        try:
            payload = pickle.loads(blob)
        except Exception:
            self.stats.note_discard(key)
            self._unlink(path)
            return None
        if (not isinstance(payload, dict)
                or payload.get("version") != CACHE_VERSION
                or payload.get("key") != key
                or "value" not in payload):
            self.stats.note_discard(key, stale=True)
            self._unlink(path)
            return None
        return payload["value"]

    def _disk_write(self, layer: _Layer, key: str, value) -> None:
        path = self._path(layer, key)
        if path is None:
            return
        payload = {"version": CACHE_VERSION, "key": key, "value": value}
        try:
            blob = pickle.dumps(payload)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
            except BaseException:
                self._unlink(Path(tmp))
                raise
        except (OSError, pickle.PicklingError):
            # A read-only or full disk degrades to memory-only caching.
            pass

    @staticmethod
    def _unlink(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def _get(self, layer: _Layer, key: str):
        value = layer.memory.get(key)
        if value is not None:
            self.stats.hits += 1
            return value
        value = self._disk_read(layer, key)
        if value is not None:
            self.stats.hits += 1
            self.stats.disk_hits += 1
            layer.memory[key] = value
            return value
        self.stats.misses += 1
        return None

    def _put(self, layer: _Layer, key: str, value) -> None:
        layer.memory[key] = value
        self._disk_write(layer, key, value)
        self.stats.stores += 1

    # -- programs -----------------------------------------------------------

    def get_program(self, key: str) -> ProgramEntry | None:
        entry = self._get(self._programs, key)
        return entry if isinstance(entry, ProgramEntry) else None

    def put_program(self, key: str, entry: ProgramEntry) -> None:
        self._put(self._programs, key, entry)

    # -- kernels ------------------------------------------------------------

    def get_artifact(self, key: str):
        """The raw :class:`KernelArtifact` for ``key``, if cached."""
        return self._get(self._kernels, key)

    def get_kernel(self, key: str):
        """A ready-to-call :class:`CompiledFunction` for ``key``, or
        ``None``.  Executables are built from the artifact once per
        process and memoized."""
        compiled = self._loaded.get(key)
        if compiled is not None:
            self.stats.hits += 1
            return compiled
        artifact = self._get(self._kernels, key)
        if artifact is None:
            return None
        from ..codegen import load_artifact

        try:
            compiled = load_artifact(artifact)
        except Exception:
            # An artifact that no longer execs is as good as corrupt.
            self.stats.note_discard(key)
            self._kernels.memory.pop(key, None)
            path = self._path(self._kernels, key)
            if path is not None:
                self._unlink(path)
            return None
        self._loaded[key] = compiled
        return compiled

    def put_kernel(self, key: str, artifact) -> None:
        self._put(self._kernels, key, artifact)

    # -- maintenance --------------------------------------------------------

    def clear_memory(self) -> None:
        """Drop the in-process layer (disk entries survive)."""
        self._programs.memory.clear()
        self._kernels.memory.clear()
        self._loaded.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = str(self.root) if self.root else "memory-only"
        s = self.stats
        return (f"<KernelCache {where} hits={s.hits} misses={s.misses} "
                f"stores={s.stores}>")


_DEFAULT: KernelCache | None = None


def default_cache() -> KernelCache:
    """The process-wide shared cache (created on first use)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = KernelCache()
    return _DEFAULT


def reset_default_cache() -> None:
    """Forget the shared instance (tests use this after repointing
    ``REPRO_SAC_CACHE_DIR``)."""
    global _DEFAULT
    _DEFAULT = None
