"""The compiler driver: sessions, the pass manager, the kernel cache.

This package is the seam between the individual compiler components
(parser, typechecker, analyzer, optimization passes, codegen backend)
and their consumers.  It owns three pieces:

* :mod:`repro.sac.driver.passes` — a declarative, instrumented
  :class:`PassManager` replacing the hardwired pass chain: passes are
  registered with the invalidations they declare, schedules may contain
  fixpoint groups, and every execution records wall time and rewrite
  counts (plus optional before/after pretty-print snapshots).
* :mod:`repro.sac.driver.cache` — a content-addressed
  :class:`KernelCache` (in-memory + on-disk) for optimized programs and
  compiled kernel specializations, keyed by source digest ×
  compile options × shape signature.
* :mod:`repro.sac.driver.session` — :class:`CompilationSession`, the
  staged pipeline (parsed → linked → typechecked → analyzed →
  optimized → backend) that owns the artifacts, reports which stages
  were served from cache, and hands consumers a ready interpreter.

See ``docs/COMPILER.md`` for the full stage/artifact model.
"""

from __future__ import annotations

from .cache import (
    KernelCache,
    default_cache,
    kernel_key,
    program_key,
    shape_signature,
    source_digest,
)
from .passes import (
    Fixpoint,
    PassExecution,
    PassManager,
    PassReport,
    PassSpec,
    registered_passes,
)
from .session import CompilationSession, StageRecord

__all__ = [
    "CompilationSession",
    "StageRecord",
    "PassManager",
    "PassSpec",
    "PassExecution",
    "PassReport",
    "Fixpoint",
    "registered_passes",
    "KernelCache",
    "default_cache",
    "kernel_key",
    "program_key",
    "shape_signature",
    "source_digest",
]
