"""Compilation sessions: staged artifacts with cache-aware skipping.

A :class:`CompilationSession` owns one module's trip through the
compiler: **parsed → linked → typechecked → analyzed → optimized →
backend**.  Each stage is timed and recorded as a :class:`StageRecord`;
when the content-addressed program cache already holds the
post-pipeline result for (source, prelude, options), the front-end and
middle-end stages are *skipped entirely* — no parse, no typecheck, no
pass runs — and their records say so (``cached=True``, zero pass-manager
executions).

The session is what consumers build against:
:class:`~repro.sac.module.SacProgram` is a thin facade over it, the
mg_sac loader uses it for warm program loads, and the runtime's kernel
library asks it for compiled specializations (which go through the same
shared :class:`~repro.sac.driver.cache.KernelCache`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from .cache import (
    KernelCache,
    ProgramEntry,
    default_cache,
    program_key,
    source_digest,
)
from .passes import PassManager

__all__ = ["StageRecord", "CompilationSession"]

#: Canonical stage order (backend is lazy: the interpreter and any JIT
#: kernels are built on first use).
STAGE_NAMES = ("parse", "link", "typecheck", "analyze", "optimize",
               "backend")


@dataclass
class StageRecord:
    """What one stage did: ran, skipped, or served from cache."""

    name: str
    seconds: float = 0.0
    ran: bool = False  #: the stage actually executed its work
    cached: bool = False  #: result came from the cache instead
    detail: str = ""

    @property
    def status(self) -> str:
        if self.cached:
            return "cached"
        return "ran" if self.ran else "skipped"


class CompilationSession:
    """One module's staged compilation, backed by the shared cache."""

    def __init__(self, source: str | None = None, filename: str = "<sac>",
                 options=None, *, parsed=None,
                 cache: KernelCache | None = None,
                 pass_manager: PassManager | None = None):
        from ..module import CompileOptions

        if source is None and parsed is None:
            raise ValueError("need source text or a pre-parsed Program")
        self.source = source
        self._parsed = parsed
        self.filename = filename
        self.options = options or CompileOptions()
        self.cache = cache if cache is not None else default_cache()
        self.pass_manager = (pass_manager if pass_manager is not None
                             else PassManager())
        self.stages: dict[str, StageRecord] = {
            name: StageRecord(name) for name in STAGE_NAMES
        }
        self.analysis_report = None
        self._interp = None
        self._compile()

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_file(cls, path: str | Path, options=None, *,
                  cache: KernelCache | None = None) -> "CompilationSession":
        path = Path(path)
        return cls(path.read_text(), str(path), options, cache=cache)

    # -- the staged pipeline ------------------------------------------------

    def _record(self, name: str, t0: float, *, ran: bool = True,
                cached: bool = False, detail: str = "") -> None:
        rec = self.stages[name]
        rec.seconds += time.perf_counter() - t0
        rec.ran = ran
        rec.cached = cached
        rec.detail = detail

    def _compile(self) -> None:
        from ..stdlib import PRELUDE_SOURCE

        opts = self.options
        if self.source is not None:
            src_digest = source_digest(self.source)
        else:
            # Pre-parsed AST: its pretty-print is the content address.
            from ..pprint import pprint_program

            src_digest = "ast:" + source_digest(pprint_program(self._parsed))
        prelude_digest = (source_digest(PRELUDE_SOURCE)
                          if opts.include_prelude else "-")
        #: One digest identifies the whole front-end configuration; it
        #: doubles as the kernel cache's program component, so an edit
        #: to the source or any option flip re-keys every kernel too.
        self.program_digest = program_key(src_digest, prelude_digest, opts)

        entry = self.cache.get_program(self.program_digest)
        if entry is not None:
            t0 = time.perf_counter()
            self.program = entry.program
            self.analysis_report = entry.analysis_report
            for name in ("parse", "link", "typecheck", "analyze",
                         "optimize"):
                self._record(name, t0, ran=False, cached=True,
                             detail="served from program cache")
                t0 = time.perf_counter()
            return

        from ..ast_nodes import Program

        t0 = time.perf_counter()
        if self._parsed is not None:
            parsed = self._parsed
            self._record("parse", t0, ran=False, detail="pre-parsed AST")
        else:
            from ..parser import parse_program

            parsed = parse_program(self.source, self.filename)
            self._record("parse", t0,
                         detail=f"{len(parsed.functions)} functions")

        t0 = time.perf_counter()
        if opts.include_prelude:
            from ..stdlib import load_prelude

            pieces = list(load_prelude().functions)
            pieces.extend(parsed.functions)
            combined = Program(tuple(pieces))
            self._record("link", t0, detail="prelude linked")
        else:
            combined = parsed
            self._record("link", t0, ran=False, detail="prelude disabled")

        t0 = time.perf_counter()
        if opts.typecheck:
            from ..typecheck import check_program

            check_program(combined)
            self._record("typecheck", t0)
        else:
            self._record("typecheck", t0, ran=False)

        t0 = time.perf_counter()
        if opts.analyze:
            from ..analysis import analyze_program
            from ..errors import SacAnalysisError

            report = analyze_program(combined)
            self.analysis_report = report
            self._record("analyze", t0,
                         detail=f"{len(report.diagnostics)} diagnostics")
            if report.errors:
                listing = "\n".join(f"  {d}" for d in report.errors)
                raise SacAnalysisError(
                    f"static analysis found {len(report.errors)} "
                    f"error(s):\n{listing}",
                    diagnostics=report.errors,
                    pos=report.errors[0].pos,
                )
        else:
            self._record("analyze", t0, ran=False)

        t0 = time.perf_counter()
        if opts.optimize:
            from ..optim.pipeline import PassOptions, optimize_with_report

            pass_options = PassOptions.from_overrides(opts.pass_overrides)
            combined, _ = optimize_with_report(combined, pass_options,
                                               manager=self.pass_manager)
            self._record("optimize", t0,
                         detail=f"{self.pass_manager.report.runs()} pass runs")
        else:
            self._record("optimize", t0, ran=False)

        self.program = combined
        self.cache.put_program(
            self.program_digest,
            ProgramEntry(program=combined,
                         analysis_report=self.analysis_report,
                         source_digest=src_digest),
        )

    # -- backend ------------------------------------------------------------

    @property
    def interpreter(self):
        """The (lazily built) interpreter over the optimized program,
        wired to the shared kernel cache so JIT specializations are
        content-addressed and reused across sessions and processes."""
        if self._interp is None:
            t0 = time.perf_counter()
            from ..interp import FunctionTable, Interpreter, InterpOptions

            table = FunctionTable()
            table.update(self.program)
            self._interp = Interpreter(
                table,
                InterpOptions(
                    vectorize=self.options.vectorize,
                    jit=self.options.jit,
                    jit_threshold=self.options.jit_threshold,
                ),
                kernel_cache=self.cache,
                program_digest=self.program_digest,
            )
            self._record("backend", t0, detail="interpreter built")
        return self._interp

    def compile_kernel(self, fname: str, example_args,
                       max_statements: int = 200_000):
        """Shape-specialize ``fname`` through the shared kernel cache."""
        from ..codegen import compile_function

        return compile_function(
            self.interpreter.functions, fname, example_args,
            max_statements=max_statements,
            cache=self.cache, program_digest=self.program_digest,
        )

    # -- introspection ------------------------------------------------------

    @property
    def pass_report(self):
        return self.pass_manager.report

    @property
    def cache_stats(self):
        """The shared cache's counters — including ``discards_by_key``,
        the per-key corrupt/stale discard counts the runtime
        supervisor's compile circuit breaker watches."""
        return self.cache.stats

    def stage(self, name: str) -> StageRecord:
        return self.stages[name]

    def from_cache(self) -> bool:
        """Whether the front/middle end was served from the cache."""
        return self.stages["optimize"].cached

    def stage_summary(self) -> str:
        lines = [f"{'stage':<10} {'status':<8} {'time_ms':>9}  detail",
                 "-" * 46]
        for name in STAGE_NAMES:
            rec = self.stages[name]
            lines.append(f"{rec.name:<10} {rec.status:<8} "
                         f"{rec.seconds * 1e3:>9.2f}  {rec.detail}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<CompilationSession {self.filename} "
                f"digest={self.program_digest[:12]} "
                f"cached={self.from_cache()}>")
