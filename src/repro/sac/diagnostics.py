"""Shared diagnostic model for all SAC static checks.

Every front-end and analysis finding is a :class:`Diagnostic` with a
stable error code, a severity, and (wherever the parser recorded one) a
:class:`~repro.sac.errors.SourcePos`.  Code families:

* ``SAC0xx`` — front-end semantic errors (:mod:`repro.sac.typecheck`),
* ``SAC1xx`` — shape analysis (:mod:`repro.sac.analysis.shapes`),
* ``SAC2xx`` — WITH-loop partition analysis
  (:mod:`repro.sac.analysis.partition`),
* ``SAC3xx`` — parallel-execution race analysis
  (:mod:`repro.sac.analysis.races`),
* ``SAC4xx`` — lints (:mod:`repro.sac.analysis.lint`),
* ``SAC5xx`` — memory effects, aliasing and reuse certification
  (:mod:`repro.sac.analysis.reuse`).

Three emitters render a diagnostic list: plain text (one finding per
line, ``file:line:col: severity: CODE message``), JSON, and SARIF 2.1.0
for code-scanning UIs.

This module deliberately has no imports from the rest of the front end
except :mod:`repro.sac.errors`, so both :mod:`repro.sac.typecheck` and
:mod:`repro.sac.analysis` can build on it without cycles.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum

from .errors import SourcePos

__all__ = [
    "Severity",
    "Diagnostic",
    "CODE_CATALOGUE",
    "render_text",
    "render_json",
    "render_sarif",
    "max_severity",
    "has_errors",
]


class Severity(Enum):
    """Finding severity, ordered: note < warning < error."""

    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"note": 0, "warning": 1, "error": 2}[self.value]

    def __ge__(self, other: "Severity") -> bool:
        return self.rank >= other.rank

    def __gt__(self, other: "Severity") -> bool:
        return self.rank > other.rank

    def __le__(self, other: "Severity") -> bool:
        return self.rank <= other.rank

    def __lt__(self, other: "Severity") -> bool:
        return self.rank < other.rank


#: code -> (default severity, one-line rule description).
CODE_CATALOGUE: dict[str, tuple[Severity, str]] = {
    # -- SAC0xx: front-end semantics ------------------------------------
    "SAC001": (Severity.ERROR, "syntax error"),
    "SAC002": (Severity.ERROR, "reference to an undefined variable"),
    "SAC003": (Severity.ERROR, "call to an undefined function"),
    "SAC004": (Severity.ERROR, "no overload accepts this argument count"),
    "SAC005": (Severity.ERROR, "duplicate parameter name"),
    "SAC006": (Severity.ERROR, "duplicate function definition"),
    "SAC007": (Severity.ERROR, "non-void function may finish without return"),
    "SAC008": (Severity.ERROR, "'.' bound outside a genarray/modarray frame"),
    "SAC009": (Severity.ERROR, "fold names an undefined function"),
    "SAC010": (Severity.ERROR, "unknown optimization pass name"),
    # -- SAC1xx: shapes --------------------------------------------------
    "SAC101": (Severity.ERROR, "elementwise operation on mismatched shapes"),
    "SAC102": (Severity.ERROR,
               "array access provably escapes the frame (halo) bounds"),
    "SAC103": (Severity.ERROR, "selection index rank exceeds array rank"),
    "SAC104": (Severity.ERROR,
               "generator rank exceeds the frame rank"),
    # -- SAC2xx: partitions ----------------------------------------------
    "SAC201": (Severity.ERROR,
               "generator blocks overlap (width exceeds step)"),
    "SAC202": (Severity.WARNING,
               "genarray generator does not cover the index space"),
    "SAC203": (Severity.ERROR,
               "generator range escapes the frame index space"),
    "SAC204": (Severity.WARNING, "generator range is provably empty"),
    "SAC205": (Severity.ERROR, "generator bounds have different lengths"),
    # -- SAC3xx: races ---------------------------------------------------
    "SAC301": (Severity.ERROR,
               "overlapping writes: WITH-loop is not SPMD-safe"),
    "SAC302": (Severity.WARNING,
               "fold function not provably associative-commutative"),
    # -- SAC4xx: lints ---------------------------------------------------
    "SAC401": (Severity.WARNING, "variable is assigned but never used"),
    "SAC402": (Severity.WARNING, "unreachable statement"),
    "SAC403": (Severity.WARNING,
               "variable may be uninitialized on some path"),
    "SAC404": (Severity.WARNING,
               "generator variable shadows an outer binding"),
    "SAC405": (Severity.WARNING,
               "WITH-loop body reads the array the loop's result "
               "rebinds at a non-identity index"),
    # -- SAC5xx: memory effects, aliasing & reuse -------------------------
    "SAC501": (Severity.ERROR,
               "in-place update would overwrite a live value"),
    "SAC502": (Severity.WARNING,
               "fusion blocked by cross-partition dependence"),
    "SAC510": (Severity.NOTE, "reuse opportunity certified"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One static finding: coded, positioned, severity-ranked."""

    code: str
    message: str
    pos: SourcePos | None = None
    severity: Severity = field(default=Severity.ERROR)
    #: Name of the enclosing function, when known.
    function: str | None = None

    @staticmethod
    def make(code: str, message: str, pos: SourcePos | None = None,
             function: str | None = None,
             severity: Severity | None = None) -> "Diagnostic":
        """Build a diagnostic, defaulting severity from the catalogue."""
        if severity is None:
            severity = CODE_CATALOGUE.get(code, (Severity.ERROR, ""))[0]
        return Diagnostic(code, message, pos, severity, function)

    def __str__(self) -> str:
        where = f"{self.pos}: " if self.pos else ""
        return f"{where}{self.severity.value}: {self.code} {self.message}"


def max_severity(diags) -> Severity | None:
    """Highest severity present, or None for an empty list."""
    worst: Severity | None = None
    for d in diags:
        if worst is None or d.severity > worst:
            worst = d.severity
    return worst


def has_errors(diags) -> bool:
    return any(d.severity is Severity.ERROR for d in diags)


# ---------------------------------------------------------------------------
# Emitters.
# ---------------------------------------------------------------------------

def render_text(diags) -> str:
    """One finding per line plus a summary line."""
    lines = [str(d) for d in diags]
    n_err = sum(1 for d in diags if d.severity is Severity.ERROR)
    n_warn = sum(1 for d in diags if d.severity is Severity.WARNING)
    lines.append(f"{n_err} error(s), {n_warn} warning(s)")
    return "\n".join(lines)


def _diag_dict(d: Diagnostic) -> dict:
    out: dict = {
        "code": d.code,
        "severity": d.severity.value,
        "message": d.message,
    }
    if d.pos is not None:
        out["file"] = d.pos.filename
        out["line"] = d.pos.line
        out["col"] = d.pos.col
    if d.function is not None:
        out["function"] = d.function
    return out


def render_json(diags) -> str:
    payload = {
        "diagnostics": [_diag_dict(d) for d in diags],
        "errors": sum(1 for d in diags if d.severity is Severity.ERROR),
        "warnings": sum(1 for d in diags if d.severity is Severity.WARNING),
    }
    return json.dumps(payload, indent=2)


_SARIF_LEVEL = {Severity.ERROR: "error", Severity.WARNING: "warning",
                Severity.NOTE: "note"}


def render_sarif(diags, tool_name: str = "repro-sac-analysis",
                 tool_version: str = "1.0.0") -> str:
    """SARIF 2.1.0 log with one run and the rule catalogue."""
    used = sorted({d.code for d in diags})
    rules = [
        {
            "id": code,
            "shortDescription": {
                "text": CODE_CATALOGUE.get(code, (Severity.ERROR, code))[1]
            },
        }
        for code in used
    ]
    results = []
    for d in diags:
        result: dict = {
            "ruleId": d.code,
            "level": _SARIF_LEVEL[d.severity],
            "message": {"text": d.message},
        }
        if d.pos is not None:
            result["locations"] = [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": d.pos.filename},
                        "region": {
                            "startLine": d.pos.line,
                            "startColumn": d.pos.col,
                        },
                    }
                }
            ]
        results.append(result)
    log = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                    "master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "version": tool_version,
                        "informationUri":
                            "https://github.com/repro/sac-mg",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2)
