"""Runtime values of the SAC interpreter.

Concrete values are plain Python scalars (``int``/``float``/``bool``) and
NumPy arrays (``int64``/``float64``/``bool_``), treated as immutable
(value semantics: no SAC operation ever mutates an existing array).

The module also defines the *abstract* values used by the vectorizing
WITH-loop evaluator (:mod:`repro.sac.withloop`):

* :class:`SpaceValue` — "a value per iteration point": a NumPy array of
  shape ``space_dims + cell_shape`` where ``space_dims`` is the shape of
  the WITH-loop's index space and ``cell_shape`` the shape of each
  per-point value (``()`` for scalars).
* :class:`IndexView` — the index variable itself, kept in *affine* form
  (per-axis ``offset + stride * grid``) as long as possible so that
  selections ``a[iv + c]`` lower to basic NumPy slices instead of
  gathers.

When an operation falls outside the abstract domain the evaluator raises
:class:`AbstractUnsupported` and the WITH-loop falls back to an exact
per-index loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import SacRuntimeError, SacTypeError
from .sactypes import BOOL, DOUBLE, INT, BaseType, SacType

__all__ = [
    "Value",
    "value_type",
    "coerce_value",
    "is_int_vector",
    "as_index_vector",
    "AbstractUnsupported",
    "SpaceValue",
    "IndexView",
    "AffineAxis",
]

#: Concrete SAC values as Python objects.
Value = object


def value_type(v) -> SacType:
    """The concrete SacType of a runtime value."""
    if isinstance(v, bool):
        return BOOL
    if isinstance(v, (int, np.integer)):
        return INT
    if isinstance(v, (float, np.floating)):
        return DOUBLE
    if isinstance(v, np.ndarray):
        if v.dtype == np.float64:
            base = BaseType.DOUBLE
        elif v.dtype == np.int64:
            base = BaseType.INT
        elif v.dtype == np.bool_:
            base = BaseType.BOOL
        else:  # pragma: no cover - defensive
            raise SacTypeError(f"unsupported array dtype {v.dtype}")
        return SacType.aks(base, v.shape)
    raise SacTypeError(f"not a SAC value: {type(v).__name__}")


def coerce_value(v):
    """Normalize NumPy scalars to Python scalars; pass arrays through."""
    if isinstance(v, np.bool_):
        return bool(v)
    if isinstance(v, np.integer):
        return int(v)
    if isinstance(v, np.floating):
        return float(v)
    if isinstance(v, np.ndarray) and v.ndim == 0:
        return coerce_value(v[()])
    return v


def is_int_vector(v) -> bool:
    return isinstance(v, np.ndarray) and v.ndim == 1 and v.dtype == np.int64


def as_index_vector(v, rank_hint: int | None = None) -> np.ndarray:
    """Coerce scalars / int vectors to an index vector.

    Scalars replicate to ``rank_hint`` components (the syntactic shortcut
    the paper describes for generator bounds).
    """
    if isinstance(v, (int, np.integer)) and not isinstance(v, bool):
        if rank_hint is None:
            raise SacRuntimeError(
                "scalar index bound used where the rank is unknown"
            )
        return np.full(rank_hint, int(v), dtype=np.int64)
    if is_int_vector(v):
        return v
    raise SacTypeError(f"expected an int vector, got {value_type(v)}")


# ---------------------------------------------------------------------------
# Abstract (vectorized) values.
# ---------------------------------------------------------------------------


class AbstractUnsupported(Exception):
    """The abstract evaluator cannot handle this operation; fall back."""


@dataclass(frozen=True)
class AffineAxis:
    """One component of an affine index: ``offset + stride * g`` with
    ``g`` running over ``0..count-1`` on its own grid axis."""

    offset: int
    stride: int
    count: int

    def values(self) -> np.ndarray:
        return self.offset + self.stride * np.arange(self.count, dtype=np.int64)

    def add(self, k: int) -> "AffineAxis":
        return AffineAxis(self.offset + k, self.stride, self.count)

    def mul(self, k: int) -> "AffineAxis":
        return AffineAxis(self.offset * k, self.stride * k, self.count)

    def floordiv(self, k: int) -> "AffineAxis":
        """Exact division: only valid when offset and stride are multiples
        of ``k`` (then floor division is affine)."""
        if k <= 0 or self.offset % k or self.stride % k:
            raise AbstractUnsupported("non-affine index division")
        return AffineAxis(self.offset // k, self.stride // k, self.count)

    def as_slice(self, extent: int) -> slice:
        """Basic-indexing slice selecting these positions along an axis of
        the given extent (requires positive stride and in-bounds range)."""
        if self.stride <= 0:
            raise AbstractUnsupported("non-positive index stride")
        last = self.offset + self.stride * (self.count - 1)
        if self.offset < 0 or last >= extent:
            raise AbstractUnsupported("index range out of bounds for slicing")
        return slice(self.offset, last + 1, self.stride)


class SpaceValue:
    """A value for every point of a WITH-loop index space."""

    __slots__ = ("data", "space_ndim")

    def __init__(self, data: np.ndarray, space_ndim: int):
        self.data = data
        self.space_ndim = space_ndim

    @property
    def space_dims(self) -> tuple[int, ...]:
        return self.data.shape[: self.space_ndim]

    @property
    def cell_shape(self) -> tuple[int, ...]:
        return self.data.shape[self.space_ndim :]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpaceValue(space={self.space_dims}, cell={self.cell_shape})"


class IndexView:
    """The WITH-loop index variable in affine form.

    Component ``j`` of the index vector equals
    ``axes[j].offset + axes[j].stride * g_j`` where ``g_j`` is the grid
    coordinate along space axis ``j``.  Materializes lazily to a
    :class:`SpaceValue` with cell shape ``(n,)`` when affine form cannot
    express an operation.
    """

    __slots__ = ("axes",)

    def __init__(self, axes: tuple[AffineAxis, ...]):
        self.axes = axes

    @property
    def rank(self) -> int:
        return len(self.axes)

    @property
    def space_dims(self) -> tuple[int, ...]:
        return tuple(ax.count for ax in self.axes)

    def materialize(self) -> SpaceValue:
        n = self.rank
        dims = self.space_dims
        data = np.empty(dims + (n,), dtype=np.int64)
        for j, ax in enumerate(self.axes):
            shape = [1] * n
            shape[j] = ax.count
            data[..., j] = ax.values().reshape(shape)
        return SpaceValue(data, n)

    # -- affine arithmetic --------------------------------------------------

    def _per_component(self, other) -> list[int] | None:
        """Interpret ``other`` as one integer per component, else None."""
        other = coerce_value(other)
        if isinstance(other, bool):
            return None
        if isinstance(other, int):
            return [other] * self.rank
        if is_int_vector(other) and other.shape[0] == self.rank:
            return [int(x) for x in other]
        return None

    def add(self, other, negate_self: bool = False):
        ks = self._per_component(other)
        if ks is None or negate_self:
            raise AbstractUnsupported("non-affine index addition")
        return IndexView(tuple(ax.add(k) for ax, k in zip(self.axes, ks)))

    def sub(self, other):
        ks = self._per_component(other)
        if ks is None:
            raise AbstractUnsupported("non-affine index subtraction")
        return IndexView(tuple(ax.add(-k) for ax, k in zip(self.axes, ks)))

    def mul(self, other):
        ks = self._per_component(other)
        if ks is None:
            raise AbstractUnsupported("non-affine index scaling")
        return IndexView(tuple(ax.mul(k) for ax, k in zip(self.axes, ks)))

    def floordiv(self, other):
        ks = self._per_component(other)
        if ks is None:
            raise AbstractUnsupported("non-affine index division")
        return IndexView(tuple(ax.floordiv(k) for ax, k in zip(self.axes, ks)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IndexView({self.axes})"
