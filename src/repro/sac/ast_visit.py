"""Shared AST visitor/walker infrastructure.

Every tree-walking component of the front end used to carry its own
copy of the same three pieces of machinery: a page-long import list of
node classes, an ``isinstance`` dispatch chain over expressions, and a
statement-execution loop for ``Assign``/``Return``/``If``/``For``/
``While``/``DoWhile``/``ExprStmt``/``Block``.  This module is the single
home for all of it:

* :func:`iter_child_nodes` / :func:`iter_child_exprs` — the
  ``dataclasses.fields`` child iteration,
* :func:`map_child_exprs` — rebuild a node with a function applied to
  every direct expression child (identity-preserving: an unchanged node
  is returned as the same object),
* :func:`walk` / :func:`walk_exprs` — full-tree traversal,
* :class:`ExprDispatcher` — expression dispatch to ``eval_<ClassName>``
  methods through a per-class memoized table (the shape both the
  interpreter and the code generator use),
* :class:`StatementExecutor` — the shared statement control-flow
  machine, parameterized over the few hooks that differ between an
  interpreter (environment objects, plain conditions) and a
  specializing tracer (dict environments, concreteness guards),
* :class:`ReturnValue` — the non-local exit both evaluators raise.

Pure rewriting utilities specific to the optimizer (substitution,
alpha-renaming, structural keys) remain in
:mod:`repro.sac.optim.rewrite`, which builds on the primitives here.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator

from .ast_nodes import (
    Assign,
    Block,
    DoWhile,
    Expr,
    ExprStmt,
    FoldOp,
    For,
    GenarrayOp,
    Generator,
    If,
    ModarrayOp,
    Node,
    Return,
    Stmt,
    While,
)

__all__ = [
    "iter_child_nodes",
    "iter_child_exprs",
    "map_child_exprs",
    "walk",
    "walk_exprs",
    "ExprDispatcher",
    "ReturnValue",
    "StatementExecutor",
]

#: Non-expression node containers whose children are still expressions
#: (the WITH-loop operation/generator wrappers).
_EXPR_CARRIERS = (GenarrayOp, ModarrayOp, FoldOp, Generator)


def iter_child_nodes(node: Node) -> Iterator[Node]:
    """Yield every direct :class:`Node` child of ``node``."""
    for f in dataclasses.fields(node):
        v = getattr(node, f.name)
        if isinstance(v, Node):
            yield v
        elif isinstance(v, tuple):
            for e in v:
                if isinstance(e, Node):
                    yield e


def iter_child_exprs(node: Node) -> Iterator[Expr]:
    """Yield every direct :class:`Expr` child of ``node``."""
    for child in iter_child_nodes(node):
        if isinstance(child, Expr):
            yield child


def map_child_exprs(node: Node, fn: Callable[[Expr], Expr]) -> Node:
    """Rebuild ``node`` with ``fn`` applied to every direct Expr child
    (descending through generator/operation carrier nodes).  Returns the
    original object when nothing changed."""
    changes = {}
    for f in dataclasses.fields(node):
        v = getattr(node, f.name)
        if isinstance(v, Expr):
            nv = fn(v)
            if nv is not v:
                changes[f.name] = nv
        elif isinstance(v, tuple) and v and all(isinstance(e, Expr) for e in v):
            nv = tuple(fn(e) for e in v)
            if any(a is not b for a, b in zip(nv, v)):
                changes[f.name] = nv
        elif isinstance(v, _EXPR_CARRIERS):
            nv = map_child_exprs(v, fn)
            if nv is not v:
                changes[f.name] = nv
    return dataclasses.replace(node, **changes) if changes else node


def walk(node: Node) -> Iterator[Node]:
    """Yield every node in the tree, children before parents."""
    for child in iter_child_nodes(node):
        yield from walk(child)
    yield node


def walk_exprs(node: Node) -> Iterator[Expr]:
    """Yield every expression node in the tree, children before
    parents (non-expression carriers are traversed, not yielded)."""
    for n in walk(node):
        if isinstance(n, Expr):
            yield n


class ExprDispatcher:
    """Expression dispatch to ``eval_<ClassName>`` methods.

    The dispatch table is built lazily per concrete subclass and cached
    on it, so the per-call cost is one dict lookup — the same speed as
    the hand-rolled tables this replaces.
    """

    #: Method-name prefix handlers use (``eval_IntLit`` and so on).
    dispatch_prefix = "eval_"

    def eval_expr(self, expr: Expr, env):
        table = type(self).__dict__.get("_expr_dispatch_table")
        if table is None:
            table = {}
            type(self)._expr_dispatch_table = table
        method = table.get(type(expr))
        if method is None:
            method = getattr(
                self, self.dispatch_prefix + type(expr).__name__, None
            )
            if method is None:
                return self.unknown_expr(expr, env)
            # Store the underlying function, not the bound method, so
            # the table is shared across instances of the class.
            table[type(expr)] = method.__func__
            return method(expr, env)
        return method(self, expr, env)

    def unknown_expr(self, expr: Expr, env):
        from .errors import SacRuntimeError

        raise SacRuntimeError(f"unknown expression {type(expr).__name__}")


class ReturnValue(Exception):
    """Non-local exit carrying a function's return value."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class StatementExecutor(ExprDispatcher):
    """The shared statement control-flow machine.

    Subclasses provide:

    * ``eval_expr(expr, env)`` (inherited dispatch or an override),
    * :meth:`bind` — record an assignment in the environment,
    * :meth:`exec_cond` — evaluate a condition to a concrete bool
      (``what`` says whether it guards a ``branch`` or a ``loop bound``,
      for error messages),

    and may override :meth:`before_stmt` (per-statement guard hook) and
    :meth:`unknown_stmt`.
    """

    def bind(self, env, name: str, value) -> None:  # pragma: no cover
        raise NotImplementedError

    def exec_cond(self, expr: Expr, env, what: str) -> bool:  # pragma: no cover
        raise NotImplementedError

    def before_stmt(self, stmt: Stmt) -> None:
        """Hook called before each statement (guards, counters)."""

    def unknown_stmt(self, stmt: Stmt, env) -> None:
        from .errors import SacRuntimeError

        raise SacRuntimeError(f"unknown statement {type(stmt).__name__}")

    def exec_block(self, block: Block, env) -> None:
        for stmt in block.statements:
            self.exec_stmt(stmt, env)

    def exec_stmt(self, stmt: Stmt, env) -> None:
        self.before_stmt(stmt)
        if isinstance(stmt, Assign):
            self.bind(env, stmt.target, self.eval_expr(stmt.value, env))
            return
        if isinstance(stmt, Return):
            raise ReturnValue(self.eval_expr(stmt.value, env))
        if isinstance(stmt, If):
            if self.exec_cond(stmt.cond, env, "branch"):
                self.exec_block(stmt.then, env)
            elif stmt.orelse is not None:
                self.exec_block(stmt.orelse, env)
            return
        if isinstance(stmt, For):
            self.exec_stmt(stmt.init, env)
            while self.exec_cond(stmt.cond, env, "loop bound"):
                self.exec_block(stmt.body, env)
                self.exec_stmt(stmt.update, env)
            return
        if isinstance(stmt, While):
            while self.exec_cond(stmt.cond, env, "loop bound"):
                self.exec_block(stmt.body, env)
            return
        if isinstance(stmt, DoWhile):
            while True:
                self.exec_block(stmt.body, env)
                if not self.exec_cond(stmt.cond, env, "loop bound"):
                    break
            return
        if isinstance(stmt, ExprStmt):
            self.eval_expr(stmt.expr, env)
            return
        if isinstance(stmt, Block):
            self.exec_block(stmt, env)
            return
        self.unknown_stmt(stmt, env)
