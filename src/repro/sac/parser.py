"""Recursive-descent parser for the SAC subset.

Grammar (paper Fig. 1 WITH-loop syntax embedded in a functional C core)::

    program    := fundef*
    fundef     := ['inline'] type IDENT '(' [param {',' param}] ')' block
    type       := basetype ['[' ('+' | '*' | ints | dots) ']']
    block      := '{' stmt* '}'
    stmt       := assign ';' | if | for | while | return ';' | expr ';'
    assign     := IDENT ('=' | '+=' | '-=' | '*=' | '/=') expr
    return     := 'return' expr
    expr       := or-expr (usual C precedence, no assignment expressions)
    postfix    := primary { '[' expr ']' }
    primary    := literal | vector | IDENT | call | '(' expr ')' | withloop
    withloop   := 'with' '(' generator ')' operation
    generator  := bound relop IDENT relop bound ['step' expr ['width' expr]]
    bound      := '.' | add-expr
    operation  := 'genarray' '(' expr ',' expr ')'
                | 'modarray' '(' expr ',' expr ')'
                | 'fold' '(' foldop ',' expr ',' expr ')'

Generator bounds parse at additive precedence so the generator's own
relational operators are unambiguous.
"""

from __future__ import annotations

from .ast_nodes import (
    Assign,
    BinOp,
    Block,
    BoolLit,
    Call,
    Dot,
    DoubleLit,
    DoWhile,
    Expr,
    FoldOp,
    For,
    FunDef,
    GenarrayOp,
    Generator,
    If,
    IntLit,
    ModarrayOp,
    Param,
    Program,
    Return,
    Select,
    Stmt,
    UnOp,
    Var,
    VectorLit,
    While,
    WithLoop,
)
from .errors import SacSyntaxError
from .lexer import tokenize
from .sactypes import BaseType, SacType
from .tokens import Token, TokenKind as T

__all__ = ["parse_program", "parse_expression", "Parser"]

_AUGOPS = {
    T.PLUS_ASSIGN: "+",
    T.MINUS_ASSIGN: "-",
    T.STAR_ASSIGN: "*",
    T.SLASH_ASSIGN: "/",
}

_BASETYPES = {
    T.KW_INT: BaseType.INT,
    T.KW_DOUBLE: BaseType.DOUBLE,
    T.KW_BOOL: BaseType.BOOL,
    T.KW_VOID: BaseType.VOID,
}


class Parser:
    """Token-stream parser; use the module-level helpers for convenience."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.i = 0

    # -- token utilities ---------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.i]

    def peek(self, k: int = 1) -> Token:
        j = min(self.i + k, len(self.tokens) - 1)
        return self.tokens[j]

    def at(self, kind: T) -> bool:
        return self.cur.kind is kind

    def accept(self, kind: T) -> Token | None:
        if self.at(kind):
            tok = self.cur
            self.i += 1
            return tok
        return None

    def expect(self, kind: T, what: str = "") -> Token:
        if not self.at(kind):
            wanted = what or kind.name
            raise SacSyntaxError(
                f"expected {wanted}, found {self.cur.text!r}", self.cur.pos
            )
        tok = self.cur
        self.i += 1
        return tok

    # -- program structure -------------------------------------------------

    def parse_program(self) -> Program:
        pos = self.cur.pos
        funs = []
        while not self.at(T.EOF):
            funs.append(self.parse_fundef())
        return Program(tuple(funs), pos=pos)

    def parse_fundef(self) -> FunDef:
        pos = self.cur.pos
        inline = self.accept(T.KW_INLINE) is not None
        rtype = self.parse_type()
        # ``genarray``/``modarray`` are also legal *function* names — the
        # paper's Fig. 10 defines a library function called genarray.
        if self.cur.kind in (T.KW_GENARRAY, T.KW_MODARRAY):
            name = self.cur.text
            self.i += 1
        else:
            name = self.expect(T.IDENT, "function name").text
        self.expect(T.LPAREN)
        params: list[Param] = []
        if not self.at(T.RPAREN):
            while True:
                ppos = self.cur.pos
                ptype = self.parse_type()
                pname = self.expect(T.IDENT, "parameter name").text
                params.append(Param(ptype, pname, ppos))
                if not self.accept(T.COMMA):
                    break
        self.expect(T.RPAREN)
        body = self.parse_block()
        return FunDef(name, tuple(params), rtype, body, inline, pos)

    def parse_type(self) -> SacType:
        tok = self.cur
        base = _BASETYPES.get(tok.kind)
        if base is None:
            raise SacSyntaxError(f"expected a type, found {tok.text!r}", tok.pos)
        self.i += 1
        if not self.accept(T.LBRACKET):
            return SacType.scalar(base)
        if self.accept(T.PLUS):
            self.expect(T.RBRACKET)
            return SacType.aud_plus(base)
        if self.accept(T.STAR):
            self.expect(T.RBRACKET)
            return SacType.aud_star(base)
        if self.at(T.DOT):
            rank = 0
            while self.accept(T.DOT):
                rank += 1
                if not self.accept(T.COMMA):
                    break
            self.expect(T.RBRACKET)
            return SacType.akd(base, rank)
        shape = []
        while True:
            lit = self.expect(T.INT, "array extent")
            shape.append(int(lit.text))
            if not self.accept(T.COMMA):
                break
        self.expect(T.RBRACKET)
        return SacType.aks(base, tuple(shape))

    # -- statements ----------------------------------------------------------

    def parse_block(self) -> Block:
        pos = self.expect(T.LBRACE).pos
        stmts: list[Stmt] = []
        while not self.at(T.RBRACE):
            stmts.append(self.parse_stmt())
        self.expect(T.RBRACE)
        return Block(tuple(stmts), pos)

    def parse_block_or_stmt(self) -> Block:
        if self.at(T.LBRACE):
            return self.parse_block()
        stmt = self.parse_stmt()
        return Block((stmt,), getattr(stmt, "pos", None))

    def parse_stmt(self) -> Stmt:
        tok = self.cur
        if tok.kind is T.KW_RETURN:
            self.i += 1
            value = self.parse_expr()
            self.expect(T.SEMI)
            return Return(value, tok.pos)
        if tok.kind is T.KW_IF:
            return self.parse_if()
        if tok.kind is T.KW_FOR:
            return self.parse_for()
        if tok.kind is T.KW_WHILE:
            self.i += 1
            self.expect(T.LPAREN)
            cond = self.parse_expr()
            self.expect(T.RPAREN)
            body = self.parse_block_or_stmt()
            return While(cond, body, tok.pos)
        if tok.kind is T.KW_DO:
            self.i += 1
            body = self.parse_block_or_stmt()
            self.expect(T.KW_WHILE, "'while' after do-body")
            self.expect(T.LPAREN)
            cond = self.parse_expr()
            self.expect(T.RPAREN)
            self.expect(T.SEMI)
            return DoWhile(body, cond, tok.pos)
        if tok.kind is T.IDENT and self._next_is_assignment():
            stmt = self.parse_assign()
            self.expect(T.SEMI)
            return stmt
        expr = self.parse_expr()
        self.expect(T.SEMI)
        from .ast_nodes import ExprStmt

        return ExprStmt(expr, tok.pos)

    def _next_is_assignment(self) -> bool:
        nxt = self.peek().kind
        return nxt is T.ASSIGN or nxt in _AUGOPS

    def parse_assign(self) -> Assign:
        tok = self.expect(T.IDENT)
        name = tok.text
        if self.accept(T.ASSIGN):
            value = self.parse_expr()
        else:
            for kind, op in _AUGOPS.items():
                if self.accept(kind):
                    value = BinOp(op, Var(name, tok.pos), self.parse_expr(), tok.pos)
                    break
            else:
                raise SacSyntaxError("expected assignment operator", self.cur.pos)
        return Assign(name, value, tok.pos)

    def parse_if(self) -> If:
        pos = self.expect(T.KW_IF).pos
        self.expect(T.LPAREN)
        cond = self.parse_expr()
        self.expect(T.RPAREN)
        then = self.parse_block_or_stmt()
        orelse = None
        if self.accept(T.KW_ELSE):
            if self.at(T.KW_IF):
                nested = self.parse_if()
                orelse = Block((nested,), nested.pos)
            else:
                orelse = self.parse_block_or_stmt()
        return If(cond, then, orelse, pos)

    def parse_for(self) -> For:
        pos = self.expect(T.KW_FOR).pos
        self.expect(T.LPAREN)
        init = self.parse_assign()
        self.expect(T.SEMI)
        cond = self.parse_expr()
        self.expect(T.SEMI)
        update = self.parse_assign()
        self.expect(T.RPAREN)
        body = self.parse_block_or_stmt()
        return For(init, cond, update, body, pos)

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.at(T.OR):
            pos = self.cur.pos
            self.i += 1
            left = BinOp("||", left, self.parse_and(), pos)
        return left

    def parse_and(self) -> Expr:
        left = self.parse_cmp()
        while self.at(T.AND):
            pos = self.cur.pos
            self.i += 1
            left = BinOp("&&", left, self.parse_cmp(), pos)
        return left

    _CMPOPS = {T.EQ: "==", T.NE: "!=", T.LT: "<", T.LE: "<=", T.GT: ">", T.GE: ">="}

    def parse_cmp(self) -> Expr:
        left = self.parse_add()
        op = self._CMPOPS.get(self.cur.kind)
        if op is not None:
            pos = self.cur.pos
            self.i += 1
            return BinOp(op, left, self.parse_add(), pos)
        return left

    def parse_add(self) -> Expr:
        left = self.parse_mul()
        while self.cur.kind in (T.PLUS, T.MINUS):
            op = "+" if self.cur.kind is T.PLUS else "-"
            pos = self.cur.pos
            self.i += 1
            left = BinOp(op, left, self.parse_mul(), pos)
        return left

    def parse_mul(self) -> Expr:
        left = self.parse_unary()
        ops = {T.STAR: "*", T.SLASH: "/", T.PERCENT: "%"}
        while self.cur.kind in ops:
            op = ops[self.cur.kind]
            pos = self.cur.pos
            self.i += 1
            left = BinOp(op, left, self.parse_unary(), pos)
        return left

    def parse_unary(self) -> Expr:
        tok = self.cur
        if tok.kind is T.MINUS:
            self.i += 1
            return UnOp("-", self.parse_unary(), tok.pos)
        if tok.kind is T.NOT:
            self.i += 1
            return UnOp("!", self.parse_unary(), tok.pos)
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        expr = self.parse_primary()
        while self.at(T.LBRACKET):
            pos = self.cur.pos
            self.i += 1
            index = self.parse_expr()
            self.expect(T.RBRACKET)
            expr = Select(expr, index, pos)
        return expr

    def parse_primary(self) -> Expr:
        tok = self.cur
        if tok.kind is T.INT:
            self.i += 1
            return IntLit(int(tok.text), tok.pos)
        if tok.kind is T.DOUBLE:
            self.i += 1
            return DoubleLit(float(tok.text), tok.pos)
        if tok.kind is T.KW_TRUE:
            self.i += 1
            return BoolLit(True, tok.pos)
        if tok.kind is T.KW_FALSE:
            self.i += 1
            return BoolLit(False, tok.pos)
        if tok.kind is T.LPAREN:
            self.i += 1
            expr = self.parse_expr()
            self.expect(T.RPAREN)
            return expr
        if tok.kind is T.LBRACKET:
            self.i += 1
            elements: list[Expr] = []
            if not self.at(T.RBRACKET):
                while True:
                    elements.append(self.parse_expr())
                    if not self.accept(T.COMMA):
                        break
            self.expect(T.RBRACKET)
            return VectorLit(tuple(elements), tok.pos)
        if tok.kind is T.KW_WITH:
            return self.parse_withloop()
        if tok.kind is T.IDENT:
            self.i += 1
            if self.at(T.LPAREN):
                self.i += 1
                args: list[Expr] = []
                if not self.at(T.RPAREN):
                    while True:
                        args.append(self.parse_expr())
                        if not self.accept(T.COMMA):
                            break
                self.expect(T.RPAREN)
                return Call(tok.text, tuple(args), tok.pos)
            return Var(tok.text, tok.pos)
        # Built-in array operations used in expression position parse as
        # ordinary calls: genarray(shp, val) outside a WITH-loop is the
        # library function of Fig. 10.
        if tok.kind in (T.KW_GENARRAY, T.KW_MODARRAY):
            self.i += 1
            self.expect(T.LPAREN)
            args = [self.parse_expr()]
            while self.accept(T.COMMA):
                args.append(self.parse_expr())
            self.expect(T.RPAREN)
            return Call(tok.text, tuple(args), tok.pos)
        raise SacSyntaxError(f"unexpected token {tok.text!r}", tok.pos)

    # -- WITH-loops ----------------------------------------------------------

    def parse_withloop(self) -> WithLoop:
        pos = self.expect(T.KW_WITH).pos
        self.expect(T.LPAREN)
        gen = self.parse_generator()
        self.expect(T.RPAREN)
        op = self.parse_operation()
        return WithLoop(gen, op, pos)

    def parse_bound(self) -> Expr:
        if self.at(T.DOT):
            pos = self.cur.pos
            self.i += 1
            return Dot(pos)
        return self.parse_add()

    def _relop(self) -> bool:
        """Consume `<` or `<=`; return inclusiveness."""
        if self.accept(T.LE):
            return True
        if self.accept(T.LT):
            return False
        raise SacSyntaxError(
            f"expected '<' or '<=' in generator, found {self.cur.text!r}",
            self.cur.pos,
        )

    def parse_generator(self) -> Generator:
        pos = self.cur.pos
        lower = self.parse_bound()
        lower_inc = self._relop()
        var = self.expect(T.IDENT, "index variable").text
        upper_inc = self._relop()
        upper = self.parse_bound()
        step = width = None
        if self.accept(T.KW_STEP):
            step = self.parse_add()
            if self.accept(T.KW_WIDTH):
                width = self.parse_add()
        return Generator(lower, lower_inc, var, upper, upper_inc, step, width, pos)

    def parse_operation(self):
        tok = self.cur
        if self.accept(T.KW_GENARRAY):
            self.expect(T.LPAREN)
            shape = self.parse_expr()
            self.expect(T.COMMA)
            body = self.parse_expr()
            self.expect(T.RPAREN)
            return GenarrayOp(shape, body, tok.pos)
        if self.accept(T.KW_MODARRAY):
            self.expect(T.LPAREN)
            array = self.parse_expr()
            self.expect(T.COMMA)
            body = self.parse_expr()
            self.expect(T.RPAREN)
            return ModarrayOp(array, body, tok.pos)
        if self.accept(T.KW_FOLD):
            self.expect(T.LPAREN)
            fun = self.parse_fold_fun()
            self.expect(T.COMMA)
            neutral = self.parse_expr()
            self.expect(T.COMMA)
            body = self.parse_expr()
            self.expect(T.RPAREN)
            return FoldOp(fun, neutral, body, tok.pos)
        raise SacSyntaxError(
            f"expected genarray/modarray/fold, found {tok.text!r}", tok.pos
        )

    def parse_fold_fun(self) -> str:
        tok = self.cur
        if tok.kind is T.IDENT:
            self.i += 1
            return tok.text
        symbol_ops = {T.PLUS: "+", T.STAR: "*"}
        if tok.kind in symbol_ops:
            self.i += 1
            return symbol_ops[tok.kind]
        raise SacSyntaxError(
            f"expected fold operation name, found {tok.text!r}", tok.pos
        )


def parse_program(source: str, filename: str = "<sac>") -> Program:
    """Parse a complete SAC module."""
    return Parser(tokenize(source, filename)).parse_program()


def parse_expression(source: str, filename: str = "<sac>") -> Expr:
    """Parse a single expression (testing/REPL helper)."""
    parser = Parser(tokenize(source, filename))
    expr = parser.parse_expr()
    parser.expect(T.EOF, "end of input")
    return expr
