"""Tokenizer for the SAC subset.

Hand-written scanner: C-style comments (``/* */`` and ``//``), integer
and floating literals, identifiers/keywords, WITH-loop punctuation and
the usual C operator set.  ``a[[0]]`` needs no special lexing — it is
ordinary selection with the literal index vector ``[0]``.
"""

from __future__ import annotations

from .errors import SacSyntaxError, SourcePos
from .tokens import KEYWORDS, Token, TokenKind

__all__ = ["tokenize"]

_TWO_CHAR = {
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "&&": TokenKind.AND,
    "||": TokenKind.OR,
    "+=": TokenKind.PLUS_ASSIGN,
    "-=": TokenKind.MINUS_ASSIGN,
    "*=": TokenKind.STAR_ASSIGN,
    "/=": TokenKind.SLASH_ASSIGN,
}

_ONE_CHAR = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMI,
    ".": TokenKind.DOT,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "=": TokenKind.ASSIGN,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "!": TokenKind.NOT,
}


def tokenize(source: str, filename: str = "<sac>") -> list[Token]:
    """Scan ``source`` into a token list ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def pos() -> SourcePos:
        return SourcePos(line, col, filename)

    def advance(k: int = 1) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        # Whitespace.
        if ch in " \t\r\n":
            advance()
            continue
        # Comments.
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance()
            continue
        if source.startswith("/*", i):
            start = pos()
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance()
            if i >= n:
                raise SacSyntaxError("unterminated block comment", start)
            advance(2)
            continue
        # Numbers.  A '.' only starts a fraction when followed by a digit,
        # so generator dots ('.' bounds) lex as DOT.
        if ch.isdigit():
            start = pos()
            j = i
            while j < n and source[j].isdigit():
                j += 1
            is_double = False
            if j < n and source[j] == "." and j + 1 < n and source[j + 1].isdigit():
                is_double = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            if j < n and source[j] in "eE":
                k = j + 1
                if k < n and source[k] in "+-":
                    k += 1
                if k < n and source[k].isdigit():
                    is_double = True
                    j = k
                    while j < n and source[j].isdigit():
                        j += 1
            text = source[i:j]
            advance(j - i)
            tokens.append(
                Token(TokenKind.DOUBLE if is_double else TokenKind.INT, text, start)
            )
            continue
        # Identifiers and keywords.
        if ch.isalpha() or ch == "_":
            start = pos()
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            advance(j - i)
            kind = KEYWORDS.get(text, TokenKind.IDENT)
            tokens.append(Token(kind, text, start))
            continue
        # Two-character operators (checked before single-character ones).
        two = source[i : i + 2]
        if two in _TWO_CHAR:
            start = pos()
            advance(2)
            tokens.append(Token(_TWO_CHAR[two], two, start))
            continue
        if ch in _ONE_CHAR:
            start = pos()
            advance()
            tokens.append(Token(_ONE_CHAR[ch], ch, start))
            continue
        raise SacSyntaxError(f"unexpected character {ch!r}", pos())

    tokens.append(Token(TokenKind.EOF, "", pos()))
    return tokens
