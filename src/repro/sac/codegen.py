"""Shape-specializing code generator: SAC to standalone NumPy Python.

``sac2c`` compiles by *specializing* shape-polymorphic functions to the
concrete shapes of their call sites and emitting loop code.  This
backend does the same thing for our dialect: given a function and
example arguments, it traces the program once — array extents, generator
bounds and control flow all become concrete; recursion and loops unroll
— and emits a flat Python function whose body is pure NumPy slice
arithmetic.  No interpreter is involved when the compiled function runs.

    from repro.sac.codegen import compile_function
    compiled = compile_function(prog, "MGrid", example_args=(v, 4))
    u = compiled(v, 4)        # straight-line NumPy, bit-compatible
    print(compiled.source)    # the generated module text

Specialization contract: double/bool *array* parameters stay symbolic
(only their shapes are baked in); scalar ints, int vectors and scalar
doubles used in control flow are baked into the code and validated at
call time.  Data-dependent control flow and non-affine WITH-loops raise
:class:`CodegenUnsupported` at compile time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .ast_nodes import (
    Dot,
    Expr,
    FoldOp,
    FunDef,
    GenarrayOp,
    ModarrayOp,
    WithLoop,
)
from .ast_visit import ReturnValue, StatementExecutor
from .builtins import FOLD_UFUNCS
from .errors import SacError, SacRuntimeError, SacTypeError
from .interp import FunctionTable
from .sactypes import BaseType, SacType
from .values import AffineAxis, IndexView, coerce_value, is_int_vector
from .withloop import IndexSpace

__all__ = ["CodegenUnsupported", "CompiledFunction", "KernelArtifact",
           "compile_function", "compile_fundef", "trace_fundef",
           "load_artifact", "trace_event_count"]

#: Process-wide count of specializing traces performed (monotonic).
#: Warm-path tests assert this does not move when every kernel is
#: served from the content-addressed cache.
_trace_events = 0


def trace_event_count() -> int:
    """How many specializing traces this process has performed."""
    return _trace_events


class CodegenUnsupported(SacError):
    """The program left the specializable subset."""


# ---------------------------------------------------------------------------
# Symbolic values.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TArray:
    """A symbolic NumPy value living in the generated code.

    ``code`` is a Python expression (almost always a temp name); shape
    and dtype are known exactly thanks to specialization.  ``shape`` may
    include the WITH-loop space dimensions when the value is per-point.
    """

    code: str
    shape: tuple[int, ...]
    dtype: np.dtype

    @property
    def is_scalar(self) -> bool:
        return self.shape == ()


def _is_concrete(v) -> bool:
    return not isinstance(v, (TArray, IndexView))


def _shape_of(v) -> tuple[int, ...]:
    if isinstance(v, TArray):
        return v.shape
    if isinstance(v, np.ndarray):
        return v.shape
    return ()


def _dtype_of(v) -> np.dtype:
    if isinstance(v, TArray):
        return v.dtype
    if isinstance(v, np.ndarray):
        return v.dtype
    if isinstance(v, bool):
        return np.dtype(np.bool_)
    if isinstance(v, int):
        return np.dtype(np.int64)
    return np.dtype(np.float64)


def _type_of(v) -> SacType:
    """Dispatch type of a (possibly symbolic) value."""
    if isinstance(v, TArray):
        base = {
            np.dtype(np.float64): BaseType.DOUBLE,
            np.dtype(np.int64): BaseType.INT,
            np.dtype(np.bool_): BaseType.BOOL,
        }[v.dtype]
        if v.shape == ():
            return SacType.scalar(base)
        return SacType.aks(base, v.shape)
    if isinstance(v, IndexView):
        return SacType.aks(BaseType.INT, (v.rank,))
    from .values import value_type

    return value_type(v)


# ---------------------------------------------------------------------------
# Emission.
# ---------------------------------------------------------------------------

class Emitter:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self.consts: dict[str, str] = {}  # const name -> literal code
        self._const_cache: dict[bytes, str] = {}
        self._n = 0

    def temp(self) -> str:
        self._n += 1
        return f"_t{self._n}"

    def assign(self, code: str, shape: tuple[int, ...],
               dtype: np.dtype) -> TArray:
        name = self.temp()
        self.lines.append(f"{name} = {code}")
        return TArray(name, shape, dtype)

    def const_array(self, arr: np.ndarray) -> str:
        """Intern a concrete array as a module-level constant."""
        key = arr.tobytes() + str(arr.dtype).encode() + str(arr.shape).encode()
        cached = self._const_cache.get(key)
        if cached is not None:
            return cached
        name = f"_C{len(self.consts)}"
        literal = np.array2string(
            arr, separator=", ", threshold=1 << 20, floatmode="unique"
        )
        self.consts[name] = (
            f"np.array({literal}, dtype=np.{arr.dtype.name})"
        )
        self._const_cache[key] = name
        return name


def _code_of(em: Emitter, v) -> str:
    """Python expression for any traced value."""
    if isinstance(v, TArray):
        return v.code
    if isinstance(v, np.ndarray):
        return em.const_array(v)
    if isinstance(v, bool):
        return "True" if v else "False"
    if isinstance(v, (int, np.integer)):
        return str(int(v))
    if isinstance(v, (float, np.floating)):
        return repr(float(v))
    raise CodegenUnsupported(f"cannot embed value of type {type(v).__name__}")


def _slices_code(axes: tuple[AffineAxis, ...], extra_full: int = 0) -> str:
    parts = []
    for ax in axes:
        stop = ax.offset + ax.stride * (ax.count - 1) + 1
        step = f":{ax.stride}" if ax.stride != 1 else ""
        parts.append(f"{ax.offset}:{stop}{step}")
    parts.extend([":"] * extra_full)
    return ", ".join(parts)


# ---------------------------------------------------------------------------
# The tracer.
# ---------------------------------------------------------------------------

_BINOP_FMT = {
    "+": "({} + {})",
    "-": "({} - {})",
    "*": "({} * {})",
    "==": "({} == {})",
    "!=": "({} != {})",
    "<": "({} < {})",
    "<=": "({} <= {})",
    ">": "({} > {})",
    ">=": "({} >= {})",
    "&&": "np.logical_and({}, {})",
    "||": "np.logical_or({}, {})",
}

_EW_BUILTINS = {
    "abs": ("np.abs({})", None),
    "sqrt": ("np.sqrt({})", np.dtype(np.float64)),
    "min": ("np.minimum({}, {})", None),
    "max": ("np.maximum({}, {})", None),
    "tod": ("np.float64({})", np.dtype(np.float64)),
}


class Tracer(StatementExecutor):
    """Specializing abstract interpreter that emits NumPy code.

    Statement control flow comes from the shared
    :class:`~repro.sac.ast_visit.StatementExecutor`; expression dispatch
    goes through its per-class ``eval_<ClassName>`` table.
    """

    def __init__(self, functions: FunctionTable, emitter: Emitter,
                 max_depth: int = 200, max_statements: int = 200_000):
        self.functions = functions
        self.em = emitter
        self.max_depth = max_depth
        self.max_statements = max_statements
        self._depth = 0

    # -- helpers --------------------------------------------------------------

    def _guard_size(self) -> None:
        if len(self.em.lines) > self.max_statements:
            raise CodegenUnsupported(
                "generated code exceeds the statement budget "
                f"({self.max_statements}); the specialization unrolls too far"
            )

    def _binop(self, op: str, l, r):
        if isinstance(l, IndexView) or isinstance(r, IndexView):
            out = self._affine_binop(op, l, r)
            if out is not None:
                return out
            raise CodegenUnsupported(
                f"non-affine index arithmetic ({op}) in specialized code"
            )
        if _is_concrete(l) and _is_concrete(r):
            from .builtins import apply_binop

            return coerce_value(apply_binop(op, l, r))
        self._guard_size()
        lc, rc = _code_of(self.em, l), _code_of(self.em, r)
        shape = np.broadcast_shapes(_shape_of(l), _shape_of(r))
        if op in ("/", "%"):
            int_op = (
                _dtype_of(l) == np.int64 and _dtype_of(r) == np.int64
            )
            if int_op:
                fn = "_sac_idiv" if op == "/" else "_sac_imod"
                return self.em.assign(f"{fn}({lc}, {rc})", shape,
                                      np.dtype(np.int64))
            if op == "%":
                raise SacTypeError("'%' requires integer operands")
            return self.em.assign(f"({lc} / {rc})", shape,
                                  np.dtype(np.float64))
        fmt = _BINOP_FMT.get(op)
        if fmt is None:
            raise CodegenUnsupported(f"operator {op!r} not supported")
        if op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
            dtype = np.dtype(np.bool_)
        else:
            dtype = np.promote_types(_dtype_of(l), _dtype_of(r))
        return self.em.assign(fmt.format(lc, rc), shape, dtype)

    @staticmethod
    def _affine_binop(op, l, r):
        try:
            if isinstance(l, IndexView):
                if op == "+":
                    return l.add(r)
                if op == "-":
                    return l.sub(r)
                if op == "*":
                    return l.mul(r)
                if op == "/":
                    return l.floordiv(r)
                return None
            if isinstance(r, IndexView):
                if op == "+":
                    return r.add(l)
                if op == "*":
                    return r.mul(l)
                if op == "-":
                    return r.mul(-1).add(l)
                return None
        except Exception:
            return None
        return None

    def _concrete_bool(self, v, what: str) -> bool:
        if not _is_concrete(v):
            raise CodegenUnsupported(
                f"data-dependent {what} cannot be specialized"
            )
        v = coerce_value(v)
        if not isinstance(v, bool):
            raise SacTypeError(f"{what} must be a boolean")
        return v

    # -- function application ---------------------------------------------------

    def apply(self, name: str, args: list):
        if name in ("+", "-", "*", "/", "%"):
            return self._binop(name, args[0], args[1])
        if self.functions.overloads(name):
            argtypes = [_type_of(a) for a in args]
            try:
                fun = self.functions.resolve(name, argtypes)
            except SacError:
                return self._builtin(name, args)
            return self.apply_fundef(fun, args)
        return self._builtin(name, args)

    def _builtin(self, name: str, args: list):
        if name == "dim":
            return len(_shape_of(args[0])) if not isinstance(args[0], IndexView) else 1
        if name == "shape":
            a = args[0]
            if isinstance(a, IndexView):
                return np.asarray([a.rank], dtype=np.int64)
            return np.asarray(_shape_of(a), dtype=np.int64)
        if name == "toi":
            a = args[0]
            if _is_concrete(a):
                from .builtins import call_builtin

                return coerce_value(call_builtin("toi", [a]))
            code = f"np.trunc({a.code}).astype(np.int64)" if a.shape else \
                f"int({a.code})"
            return self.em.assign(code, a.shape, np.dtype(np.int64))
        if name in ("sum", "prod"):
            a = args[0]
            if _is_concrete(a):
                from .builtins import call_builtin

                return coerce_value(call_builtin(name, [a]))
            fn = "np.sum" if name == "sum" else "np.prod"
            return self.em.assign(f"{fn}({a.code})", (), a.dtype)
        fmt_dtype = _EW_BUILTINS.get(name)
        if fmt_dtype is not None:
            fmt, forced = fmt_dtype
            if all(_is_concrete(a) for a in args):
                from .builtins import call_builtin

                return coerce_value(call_builtin(name, args))
            codes = [_code_of(self.em, a) for a in args]
            shape = np.broadcast_shapes(*(_shape_of(a) for a in args))
            dtype = forced or np.promote_types(
                _dtype_of(args[0]),
                _dtype_of(args[-1]) if len(args) > 1 else _dtype_of(args[0]),
            )
            return self.em.assign(fmt.format(*codes), shape, dtype)
        raise CodegenUnsupported(f"builtin {name!r} not supported in codegen")

    def apply_fundef(self, fun: FunDef, args: list):
        if self._depth >= self.max_depth:
            raise CodegenUnsupported(
                f"specialization recursion exceeds {self.max_depth} in "
                f"{fun.name!r}"
            )
        env = {p.name: a for p, a in zip(fun.params, args)}
        self._depth += 1
        try:
            self.exec_block(fun.body, env)
        except ReturnValue as ret:
            return ret.value
        finally:
            self._depth -= 1
        if fun.return_type.base is BaseType.VOID:
            return None
        raise SacRuntimeError(f"function {fun.name!r} did not return a value")

    # -- statements ----------------------------------------------------------------
    # Control flow comes from the shared StatementExecutor; the hooks
    # below supply the tracer-specific pieces.

    def before_stmt(self, stmt) -> None:
        self._guard_size()

    def bind(self, env: dict, name: str, value) -> None:
        env[name] = value

    def exec_cond(self, expr: Expr, env: dict, what: str) -> bool:
        return self._concrete_bool(self.eval_expr(expr, env), what)

    def unknown_stmt(self, stmt, env) -> None:  # pragma: no cover
        raise CodegenUnsupported(f"unknown statement {type(stmt).__name__}")

    # -- expressions ------------------------------------------------------------------

    def eval_IntLit(self, expr, env: dict):
        return expr.value

    def eval_DoubleLit(self, expr, env: dict):
        return expr.value

    def eval_BoolLit(self, expr, env: dict):
        return expr.value

    def eval_Var(self, expr, env: dict):
        try:
            return env[expr.name]
        except KeyError:
            from .errors import SacNameError

            raise SacNameError(f"undefined variable {expr.name!r}",
                               expr.pos) from None

    def eval_VectorLit(self, expr, env: dict):
        return self._vector(expr, env)

    def eval_BinOp(self, expr, env: dict):
        return self._binop(expr.op, self.eval_expr(expr.left, env),
                           self.eval_expr(expr.right, env))

    def eval_UnOp(self, expr, env: dict):
        v = self.eval_expr(expr.operand, env)
        if isinstance(v, IndexView):
            if expr.op == "-":
                return v.mul(-1)
            raise CodegenUnsupported("'!' on an index vector")
        if _is_concrete(v):
            from .builtins import apply_unop

            return coerce_value(apply_unop(expr.op, v))
        code = f"(-{v.code})" if expr.op == "-" else \
            f"np.logical_not({v.code})"
        return self.em.assign(code, v.shape, v.dtype)

    def eval_Call(self, expr, env: dict):
        return self.apply(expr.name,
                          [self.eval_expr(a, env) for a in expr.args])

    def eval_Select(self, expr, env: dict):
        return self._select(
            self.eval_expr(expr.array, env), self.eval_expr(expr.index, env)
        )

    def eval_WithLoop(self, expr, env: dict):
        return self._withloop(expr, env)

    def eval_Dot(self, expr, env: dict):
        raise SacRuntimeError("'.' is only legal inside a generator")

    def unknown_expr(self, expr, env):
        raise CodegenUnsupported(f"unknown expression {type(expr).__name__}")

    def _vector(self, expr, env: dict):
        values = [self.eval_expr(e, env) for e in expr.elements]
        if all(_is_concrete(v) for v in values):
            arr = np.asarray([coerce_value(v) for v in values])
            if np.issubdtype(arr.dtype, np.integer):
                return arr.astype(np.int64)
            if np.issubdtype(arr.dtype, np.floating):
                return arr.astype(np.float64)
            return arr
        codes = [_code_of(self.em, v) for v in values]
        shapes = {_shape_of(v) for v in values}
        if len(shapes) != 1:
            raise CodegenUnsupported("mixed-shape symbolic vector literal")
        cell = shapes.pop()
        dtype = np.promote_types(
            _dtype_of(values[0]), _dtype_of(values[-1])
        )
        return self.em.assign(
        f"np.stack([{', '.join(codes)}], axis=-1)"
            if cell else f"np.array([{', '.join(codes)}])",
            cell + (len(values),) if cell else (len(values),),
            dtype,
        )

    # -- selection ----------------------------------------------------------------------

    def _select(self, array, index):
        index = coerce_value(index) if _is_concrete(index) else index
        if isinstance(array, IndexView):
            if not isinstance(index, (int, np.ndarray)):
                raise CodegenUnsupported("symbolic index into index vector")
            idx = self._index_tuple(index)
            ax = array.axes[idx[0]]
            if ax.count != 1 and ax.stride == 0:
                pass
            # Component j of the index vector varies along space axis j;
            # emit its value grid as a constant-stride arange expression.
            j = idx[0]
            dims = array.space_dims
            code = (
                f"(np.arange({ax.count}, dtype=np.int64) * {ax.stride} + "
                f"{ax.offset})"
            )
            reshape = ["1"] * len(dims)
            reshape[j] = str(ax.count)
            code = f"{code}.reshape({', '.join(reshape)})"
            bcast = ", ".join(str(d) for d in dims)
            return self.em.assign(
                f"np.broadcast_to({code}, ({bcast},))", dims,
                np.dtype(np.int64),
            )
        if isinstance(array, np.ndarray):
            if isinstance(index, IndexView):
                # Concrete array indexed by the loop index: materialize a
                # gather over the (concrete) affine positions.
                sel = tuple(ax.values() for ax in index.axes)
                grids = np.meshgrid(*sel, indexing="ij") if len(sel) > 1 else \
                    [sel[0]]
                self._check_bounds_concrete(array, grids)
                return array[tuple(grids)]
            idx = self._index_tuple(index)
            self._check_index(array.shape, idx)
            out = array[idx]
            return coerce_value(out) if np.isscalar(out) or out.ndim == 0 \
                else np.asarray(out)
        if isinstance(array, TArray):
            if isinstance(index, IndexView):
                n = index.rank
                if n > len(array.shape):
                    raise SacTypeError("index longer than array rank")
                for ax, ext in zip(index.axes, array.shape):
                    if ax.stride <= 0:
                        raise CodegenUnsupported("non-positive index stride")
                    last = ax.offset + ax.stride * (ax.count - 1)
                    if ax.offset < 0 or last >= ext:
                        raise SacRuntimeError(
                            f"index range {ax.offset}..{last} out of bounds "
                            f"for extent {ext}"
                        )
                sel = _slices_code(index.axes, len(array.shape) - n)
                shape = index.space_dims + array.shape[n:]
                return self.em.assign(
                    f"{array.code}[{sel}]", shape, array.dtype
                )
            if isinstance(index, TArray):
                raise CodegenUnsupported("data-dependent selection")
            idx = self._index_tuple(index)
            self._check_index(array.shape, idx)
            sel = ", ".join(str(i) for i in idx)
            shape = array.shape[len(idx):]
            return self.em.assign(f"{array.code}[{sel}]", shape, array.dtype)
        raise SacTypeError("cannot select from a scalar")

    @staticmethod
    def _index_tuple(index) -> tuple[int, ...]:
        if isinstance(index, (int, np.integer)) and not isinstance(index, bool):
            return (int(index),)
        if is_int_vector(index):
            return tuple(int(x) for x in index)
        raise CodegenUnsupported("selection index must be a concrete int "
                                 "or int vector")

    @staticmethod
    def _check_index(shape, idx) -> None:
        if len(idx) > len(shape):
            raise SacTypeError("index longer than array rank")
        for j, (i, ext) in enumerate(zip(idx, shape)):
            if i < 0 or i >= ext:
                raise SacRuntimeError(
                    f"index {i} out of bounds for axis {j} (extent {ext})"
                )

    @staticmethod
    def _check_bounds_concrete(array, grids) -> None:
        for j, g in enumerate(grids):
            if g.min() < 0 or g.max() >= array.shape[j]:
                raise SacRuntimeError(
                    f"index out of bounds on axis {j} in gather"
                )

    # -- WITH-loops -----------------------------------------------------------------------

    def _withloop(self, wl: WithLoop, env: dict):
        op = wl.operation
        shp = None
        frame_shape = None
        base = None
        if isinstance(op, GenarrayOp):
            shp_v = self.eval_expr(op.shape, env)
            if not _is_concrete(shp_v):
                raise CodegenUnsupported("symbolic genarray shape")
            shp_arr = np.atleast_1d(np.asarray(coerce_value(shp_v)))
            shp = tuple(int(x) for x in shp_arr)
            frame_shape = shp
        elif isinstance(op, ModarrayOp):
            base = self.eval_expr(op.array, env)
            frame_shape = _shape_of(base)
            if not frame_shape and not isinstance(base, (TArray, np.ndarray)):
                raise SacTypeError("modarray frame must be an array")

        space = self._space(wl.generator, env, frame_shape)
        iv = IndexView(space.axes())
        body_env = dict(env)
        body_env[wl.generator.var] = iv

        if isinstance(op, FoldOp):
            return self._fold(op, body_env, space, env)

        # Compile-time evaluation: when every input is concrete the loop
        # can run now (index vectors like the periodic-border unit vector
        # must, or generator bounds downstream turn symbolic).  Large
        # float arrays stay symbolic so zeros(34^3) is an expression in
        # the generated code, not a constant-pool blob.
        concrete = self._try_withloop_concrete(op, body_env, space, shp, base)
        if concrete is not None:
            return concrete

        body = self.eval_expr(op.body, body_env)
        cell = self._cell_shape(body, space)
        if isinstance(op, GenarrayOp):
            dtype = _dtype_of(body)
            out = self.em.assign(
                f"np.zeros({shp + cell}, dtype=np.{dtype.name})",
                shp + cell, dtype,
            )
        else:
            dtype = np.promote_types(_dtype_of(base), _dtype_of(body))
            if self._may_reuse_frame(wl, base, dtype):
                # Certified in-place update (repro.sac.optim.ipup): the
                # frame is a dead, unaliased temp of this trace, so the
                # result steals its buffer instead of copying.  The body
                # above is an expression over *views* of the frame;
                # NumPy materializes the right-hand side of a slice
                # assignment before writing, so overlap is safe.
                out = TArray(base.code, frame_shape, dtype)
            else:
                out = self.em.assign(
                    f"{_code_of(self.em, base)}.copy()", frame_shape, dtype
                )
            if cell != frame_shape[space.rank:]:
                raise SacTypeError("modarray cell shape mismatch")
        if not space.is_empty:
            region = _slices_code(space.axes(), len(cell))
            self.em.lines.append(
                f"{out.code}[{region}] = {_code_of(self.em, body)}"
            )
        return out

    @staticmethod
    def _may_reuse_frame(wl: WithLoop, base, dtype: np.dtype) -> bool:
        """Whether a modarray result may steal its frame's buffer.

        Requires the static certificate (a :class:`ReuseHint` attached
        by the ipup pass) *and* trace-level guards: the frame must be a
        symbolic temp of this trace — never a function parameter or an
        interned module constant, whose buffers the caller owns — and
        the write must not promote the dtype.
        """
        hint = wl.hint
        return (
            hint is not None
            and hint.buffer_reuse
            and isinstance(base, TArray)
            and base.code.startswith("_t")
            and dtype == base.dtype
        )

    _CONCRETE_FOLD_LIMIT = 64

    def _try_withloop_concrete(self, op, body_env: dict, space: IndexSpace,
                               shp, base):
        """Evaluate a genarray/modarray WITH-loop at compile time when all
        inputs are concrete; returns None when it must stay symbolic."""
        if isinstance(op, ModarrayOp) and not isinstance(base, np.ndarray):
            return None
        frame = tuple(shp) if shp is not None else base.shape
        total = 1
        for s in frame:
            total *= s
        # Keep big double arrays symbolic.
        snapshot = len(self.em.lines)
        try:
            body = self.eval_expr(op.body, body_env)
        except CodegenUnsupported:
            raise
        if not _is_concrete(body) or isinstance(body, IndexView):
            return None
        body_val = coerce_value(body)
        bshape = np.asarray(body_val).shape
        # Per-point results carry the space dims as a prefix; otherwise
        # the body is constant across the space.
        if bshape[: space.rank] == space.count:
            cell = bshape[space.rank:]
        else:
            cell = bshape
        is_float = isinstance(body_val, float) or (
            isinstance(body_val, np.ndarray)
            and body_val.dtype == np.float64
        )
        if isinstance(op, ModarrayOp):
            is_float = is_float or base.dtype == np.float64
        if is_float and total > self._CONCRETE_FOLD_LIMIT:
            return None
        del self.em.lines[snapshot:]  # drop any speculative emissions
        if isinstance(op, GenarrayOp):
            out = np.zeros(frame + cell, dtype=_dtype_of(body_val))
        else:
            out = base.copy()
        if not space.is_empty:
            region = tuple(ax.as_slice(ext)
                           for ax, ext in zip(space.axes(), out.shape))
            # The body is constant across the space here (it evaluated to
            # a concrete value with the index variable still abstract).
            out[region] = body_val
        return out

    def _cell_shape(self, body, space: IndexSpace) -> tuple[int, ...]:
        if isinstance(body, IndexView):
            raise CodegenUnsupported("raw index vector as loop body")
        shape = _shape_of(body)
        if shape[: space.rank] == space.count:
            return shape[space.rank:]
        # Constant across the space.
        return shape

    def _fold(self, op: FoldOp, body_env: dict, space: IndexSpace, env: dict):
        neutral = self.eval_expr(op.neutral, env)
        if space.is_empty:
            return neutral
        body = self.eval_expr(op.body, body_env)
        ufunc = FOLD_UFUNCS.get(op.fun)
        if ufunc is None:
            raise CodegenUnsupported(
                f"fold function {op.fun!r} has no vectorized reduction"
            )
        fn = {"+": "np.add", "*": "np.multiply", "min": "np.minimum",
              "max": "np.maximum"}[op.fun]
        body_shape = _shape_of(body)
        if body_shape[: space.rank] == space.count:
            cell = body_shape[space.rank:]
            code = (
                f"{fn}.reduce({_code_of(self.em, body)}"
                f".reshape(-1, *{cell}), axis=0)" if cell else
                f"{fn}.reduce({_code_of(self.em, body)}.reshape(-1))"
            )
            reduced = self.em.assign(code, cell, _dtype_of(body))
        else:
            # Constant body: neutral op (count * body) for +; generic:
            # repeat-reduce is wasteful, emit explicit arithmetic for +/*.
            total = 1
            for c in space.count:
                total *= c
            if op.fun == "+":
                reduced = self._binop("*", total, body)
            elif op.fun == "*":
                raise CodegenUnsupported("constant-body product fold")
            else:
                reduced = body
        return self._fold_combine(op.fun, neutral, reduced)

    def _fold_combine(self, fun: str, neutral, reduced):
        if fun == "+":
            return self._binop("+", neutral, reduced)
        if fun == "*":
            return self._binop("*", neutral, reduced)
        fn = "np.minimum" if fun == "min" else "np.maximum"
        if _is_concrete(neutral) and _is_concrete(reduced):
            arr = np.minimum(neutral, reduced) if fun == "min" else \
                np.maximum(neutral, reduced)
            return coerce_value(arr)
        code = (f"{fn}({_code_of(self.em, neutral)}, "
                f"{_code_of(self.em, reduced)})")
        shape = np.broadcast_shapes(_shape_of(neutral), _shape_of(reduced))
        return self.em.assign(code, shape,
                              np.promote_types(_dtype_of(neutral),
                                               _dtype_of(reduced)))

    # -- generator resolution -----------------------------------------------------------------

    def _space(self, gen, env: dict, frame_shape) -> IndexSpace:
        def bound(expr, is_upper: bool):
            if isinstance(expr, Dot):
                if frame_shape is None:
                    raise SacRuntimeError(
                        "'.' generator bounds need a genarray/modarray frame"
                    )
                if is_upper:
                    return np.asarray(frame_shape, dtype=np.int64) - 1
                return np.zeros(len(frame_shape), dtype=np.int64)
            v = self.eval_expr(expr, env)
            if not _is_concrete(v):
                raise CodegenUnsupported("symbolic generator bound")
            v = coerce_value(v)
            if isinstance(v, (int, np.integer)):
                if frame_shape is None:
                    raise SacRuntimeError("scalar bound without frame")
                return np.full(len(frame_shape), int(v), dtype=np.int64)
            if is_int_vector(v):
                return v
            raise SacTypeError("generator bound must be an int vector")

        lo = bound(gen.lower, False)
        hi = bound(gen.upper, True)
        if len(lo) != len(hi):
            raise SacTypeError("generator bounds have different lengths")
        if not gen.lower_inclusive:
            lo = lo + 1
        if gen.upper_inclusive:
            hi = hi + 1
        rank = len(lo)
        if gen.step is not None:
            sv = self.eval_expr(gen.step, env)
            if not _is_concrete(sv):
                raise CodegenUnsupported("symbolic generator step")
            sv = coerce_value(sv)
            step = np.full(rank, int(sv), dtype=np.int64) if isinstance(
                sv, (int, np.integer)) else np.asarray(sv)
            if np.any(step <= 0):
                raise SacRuntimeError("generator step must be positive")
        else:
            step = np.ones(rank, dtype=np.int64)
        if gen.width is not None:
            raise CodegenUnsupported("width filters are not specializable")
        span = hi - lo
        count = np.where(span > 0, -(-span // step), 0)
        space = IndexSpace(
            tuple(int(x) for x in lo),
            tuple(int(x) for x in step),
            tuple(int(x) for x in count),
            tuple(1 for _ in range(rank)),
        )
        if frame_shape is not None:
            from .withloop import _check_region

            _check_region(space, tuple(frame_shape)[: space.rank])
        return space


# ---------------------------------------------------------------------------
# Public entry point.
# ---------------------------------------------------------------------------

_MODULE_HEADER = '''\
"""Generated by repro.sac.codegen — shape-specialized NumPy code.

Function: {fname}
Specialization: {spec}
"""

import numpy as np


def _sac_idiv(a, b):
    q = np.floor_divide(a, b)
    r = a - b * q
    return q + ((r != 0) & ((np.asarray(a) < 0) != (np.asarray(b) < 0)))


def _sac_imod(a, b):
    return a - b * _sac_idiv(a, b)

'''


@dataclass(frozen=True)
class KernelArtifact:
    """The persistable product of one specializing trace.

    Everything needed to rebuild an executable
    :class:`CompiledFunction` — the generated module source, the
    parameter order, and the baked-in constants — with no AST, tracer or
    interpreter state.  Artifacts are plain data (strings, tuples,
    NumPy scalars/arrays), so they pickle cleanly into the
    content-addressed kernel cache and reload across processes.
    """

    name: str
    source: str
    signature: tuple[str, ...]
    baked: dict[str, object]


@dataclass
class CompiledFunction:
    """A specialized, executable translation of one SAC function."""

    name: str
    source: str
    signature: tuple[str, ...]
    baked: dict[str, object]
    _callable: object = field(repr=False, default=None)

    @property
    def artifact(self) -> KernelArtifact:
        """The persistable artifact this function was loaded from."""
        return KernelArtifact(self.name, self.source, self.signature,
                              self.baked)

    def __call__(self, *args):
        if len(args) != len(self.signature):
            raise TypeError(
                f"{self.name} expects {len(self.signature)} argument(s)"
            )
        for name, value in zip(self.signature, args):
            if name in self.baked:
                expect = self.baked[name]
                same = (
                    np.array_equal(expect, value)
                    if isinstance(expect, np.ndarray)
                    else expect == value
                )
                if not same:
                    raise ValueError(
                        f"argument {name!r} was specialized to {expect!r}; "
                        f"recompile for {value!r}"
                    )
        array_args = [
            a for name, a in zip(self.signature, args)
            if name not in self.baked
        ]
        return self._callable(*array_args)


def compile_function(program_or_table, fname: str, example_args,
                     max_statements: int = 200_000, *,
                     cache=None, program_digest: str | None = None
                     ) -> CompiledFunction:
    """Specialize ``fname`` for the shapes/values of ``example_args``.

    Float/bool arrays stay symbolic (shape-specialized); ints, int
    vectors and scalar floats are baked in as constants.  Returns a
    :class:`CompiledFunction` whose ``source`` is a standalone Python
    module.

    With ``cache`` (a :class:`repro.sac.driver.cache.KernelCache`) and
    ``program_digest``, the specialization is looked up in — and traced
    into — the shared content-addressed cache, so repeated calls with
    the same program, options and argument shapes skip tracing entirely,
    in this process and in later ones.
    """
    if isinstance(program_or_table, FunctionTable):
        table = program_or_table
    else:
        prog = getattr(program_or_table, "interp", None)
        if prog is not None:  # a SacProgram
            table = program_or_table.interp.functions
        else:
            table = FunctionTable()
            table.update(program_or_table)

    ingested = []
    for a in example_args:
        if isinstance(a, np.ndarray) and a.dtype not in (
            np.dtype(np.float64), np.dtype(np.int64), np.dtype(np.bool_)
        ):
            a = a.astype(np.float64)
        ingested.append(coerce_value(a))
    if cache is not None and program_digest is not None:
        from .driver.cache import kernel_key, shape_signature

        key = kernel_key(program_digest, fname, shape_signature(ingested))
        compiled = cache.get_kernel(key)
        if compiled is not None:
            return compiled
        probe_types = [_type_of(_probe_value(a)) for a in ingested]
        fun = table.resolve(fname, probe_types)
        artifact = trace_fundef(table, fun, ingested,
                                max_statements=max_statements)
        cache.put_kernel(key, artifact)
        return load_artifact(artifact)
    probe_types = [_type_of(_probe_value(a)) for a in ingested]
    fun = table.resolve(fname, probe_types)
    return compile_fundef(table, fun, ingested,
                          max_statements=max_statements)


def trace_fundef(table: FunctionTable, fun: FunDef, example_args,
                 max_statements: int = 200_000) -> KernelArtifact:
    """Trace/specialize one resolved overload into a persistable
    :class:`KernelArtifact` (no executable is built — see
    :func:`load_artifact` for that half)."""
    global _trace_events
    _trace_events += 1
    em = Emitter()
    tracer = Tracer(table, em, max_statements=max_statements)
    fname = fun.name
    ingested = [coerce_value(a) for a in example_args]
    symbolic: list[tuple[str, TArray]] = []
    traced_args = []
    baked: dict[str, object] = {}

    for param, a in zip(fun.params, ingested):
        if isinstance(a, np.ndarray) and a.dtype == np.float64:
            t = TArray(param.name, a.shape, a.dtype)
            symbolic.append((param.name, t))
            traced_args.append(t)
        else:
            baked[param.name] = a
            traced_args.append(a)

    result = tracer.apply_fundef(fun, traced_args)
    ret_code = _code_of(em, result)

    spec = ", ".join(
        f"{p.name}: "
        + (f"double{list(_shape_of(t))}" if (p.name, t) in
           [(n, v) for n, v in symbolic] else f"= {baked.get(p.name)!r}")
        for p, t in zip(fun.params, traced_args)
    )
    params = ", ".join(name for name, _ in symbolic)
    body_lines = em.lines + [f"return {ret_code}"]
    body = "\n".join("    " + ln for ln in body_lines)
    consts = "\n".join(f"{n} = {c}" for n, c in em.consts.items())
    source = (
        _MODULE_HEADER.format(fname=fname, spec=spec)
        + (consts + "\n\n" if consts else "")
        + f"def {fname}({params}):\n{body}\n"
    )
    return KernelArtifact(
        name=fname,
        source=source,
        signature=tuple(p.name for p in fun.params),
        baked=baked,
    )


def load_artifact(artifact: KernelArtifact) -> CompiledFunction:
    """Build the executable for a (possibly cached) artifact by
    exec-ing its generated module source."""
    namespace: dict = {}
    exec(compile(artifact.source, f"<sac-codegen:{artifact.name}>", "exec"),
         namespace)
    return CompiledFunction(
        name=artifact.name,
        source=artifact.source,
        signature=artifact.signature,
        baked=artifact.baked,
        _callable=namespace[artifact.name],
    )


def compile_fundef(table: FunctionTable, fun: FunDef, example_args,
                   max_statements: int = 200_000) -> CompiledFunction:
    """Specialize one resolved overload (see :func:`compile_function`)."""
    return load_artifact(trace_fundef(table, fun, example_args,
                                      max_statements=max_statements))


def _probe_value(a):
    """Placeholder with the right dispatch type for overload resolution."""
    return a
