"""SAC compiler optimization passes (AST-to-AST)."""

from .coeffgroup import coeffgroup_pass
from .constfold import constfold_pass
from .dce import dce_pass
from .inline import inline_pass
from .ipup import ipup_pass
from .pipeline import PASS_NAMES, PassOptions, optimize_program
from .unroll import unroll_pass
from .wlfold import wlfold_pass

__all__ = [
    "PASS_NAMES",
    "PassOptions",
    "optimize_program",
    "inline_pass",
    "constfold_pass",
    "wlfold_pass",
    "unroll_pass",
    "coeffgroup_pass",
    "dce_pass",
    "ipup_pass",
]
