"""WITH-loop folding (producer/consumer fusion).

The optimization the paper credits for SAC's competitive performance
([28]): when one WITH-loop produces an array that another WITH-loop only
reads back elementwise, the producer's body is substituted into the
consumer, eliminating the intermediate array::

    t = with (. <= i <= .) genarray(shp, f(i));
    r = with (g) genarray(shp2, t[e(j)]);
        ==>
    r = with (g) genarray(shp2, f(e(j)));

Safety conditions enforced here:

* the producer is a ``genarray`` WITH-loop whose generator is *total*
  (both bounds are ``.``, no step/width) — every element of the produced
  array equals the body, so any in-range selection can be substituted;
* the produced variable is assigned exactly once in the function and
  every use is a selection ``t[...]`` (the variable never escapes whole);
* producer and consumer live in the same straight-line block region
  (assignments between them cannot interfere — the language is pure).

After substitution the producer assignment becomes dead and DCE removes
it.
"""

from __future__ import annotations

import dataclasses

from ..ast_nodes import (
    Assign,
    Block,
    Dot,
    Expr,
    FunDef,
    GenarrayOp,
    Program,
    Select,
    Var,
    WithLoop,
)
from .rewrite import map_expr, map_stmt_exprs, substitute, walk_exprs

__all__ = ["wlfold_pass"]


def _is_total_producer(expr: Expr) -> bool:
    if not isinstance(expr, WithLoop):
        return False
    if not isinstance(expr.operation, GenarrayOp):
        return False
    gen = expr.generator
    return (
        isinstance(gen.lower, Dot)
        and isinstance(gen.upper, Dot)
        and gen.lower_inclusive
        and gen.upper_inclusive
        and gen.step is None
        and gen.width is None
    )


def _uses(fun: FunDef, name: str):
    """Yield every Var node with this name in the function body."""
    for e in walk_exprs(fun.body):
        if isinstance(e, Var) and e.name == name:
            yield e


def _only_selected(fun: FunDef, name: str) -> bool:
    """True when every use of ``name`` is as ``name[index]`` (and the
    index itself does not mention ``name``)."""
    select_arrays = set()
    for e in walk_exprs(fun.body):
        if isinstance(e, Select) and isinstance(e.array, Var) and \
                e.array.name == name:
            select_arrays.add(id(e.array))
            for sub in walk_exprs(e.index):
                if isinstance(sub, Var) and sub.name == name:
                    return False
    total = sum(1 for _ in _uses(fun, name))
    return total > 0 and total == len(select_arrays)


def _assign_count(fun: FunDef, name: str) -> int:
    count = 0

    def walk(stmt) -> None:
        nonlocal count
        if isinstance(stmt, Assign) and stmt.target == name:
            count += 1
        for f in dataclasses.fields(stmt):
            v = getattr(stmt, f.name)
            if isinstance(v, Block):
                for s in v.statements:
                    walk(s)
            elif isinstance(v, tuple):
                for s in v:
                    if hasattr(s, "__dataclass_fields__") and not isinstance(s, Expr):
                        walk(s)
            elif hasattr(v, "__dataclass_fields__") and isinstance(v, Assign):
                walk(v)

    for s in fun.body.statements:
        walk(s)
    return count


def _shape_cheap(expr: Expr) -> bool:
    """Safe to duplicate at shape() use sites: no WITH-loops, and the
    only calls are the structural builtins shape/dim."""
    from ..ast_nodes import Call

    for e in walk_exprs(expr):
        if isinstance(e, WithLoop):
            return False
        if isinstance(e, Call) and e.name not in ("shape", "dim"):
            return False
    return True


def _eliminate_shape_uses(fun: FunDef) -> FunDef:
    """Rewrite ``shape(t)`` to the producer's shape expression for every
    total-genarray producer ``t``, unlocking folds blocked by structural
    queries (``embed(shape(rc)+1, 0*shape(rc), rc)`` in Fig. 7)."""
    from ..ast_nodes import Call

    changed = False
    for stmt in fun.body.statements:
        if not isinstance(stmt, Assign):
            continue
        if not _is_total_producer(stmt.value):
            continue
        name = stmt.target
        if _assign_count(fun, name) != 1:
            continue
        shp = stmt.value.operation.shape  # type: ignore[union-attr]
        if not _shape_cheap(shp):
            continue
        free = {e.name for e in walk_exprs(shp) if isinstance(e, Var)}
        if any(_assign_count(fun, v) > 1 for v in free):
            continue

        def rewrite(e: Expr) -> Expr:
            nonlocal changed
            if (
                isinstance(e, Call)
                and e.name == "shape"
                and len(e.args) == 1
                and isinstance(e.args[0], Var)
                and e.args[0].name == name
            ):
                changed = True
                return shp
            return e

        new_body = map_stmt_exprs(fun.body, rewrite)
        if changed:
            fun = dataclasses.replace(fun, body=new_body)
            changed = False
    return fun


def _fold_one(fun: FunDef) -> FunDef | None:
    """Perform one fold in ``fun``; None when no opportunity exists."""
    # Find candidate producers at the top level of the function body.
    for stmt in fun.body.statements:
        if not isinstance(stmt, Assign):
            continue
        if not _is_total_producer(stmt.value):
            continue
        name = stmt.target
        if _assign_count(fun, name) != 1:
            continue
        if not _only_selected(fun, name):
            continue
        wl: WithLoop = stmt.value  # type: ignore[assignment]
        op: GenarrayOp = wl.operation  # type: ignore[assignment]
        ivar = wl.generator.var
        body = op.body

        # Substitution safety: the producer body's free variables must be
        # stable (assigned at most once in the function, so their value at
        # any consumer use equals their value at the producer)...
        free = {
            e.name for e in walk_exprs(body) if isinstance(e, Var)
        } - {ivar}
        if any(_assign_count(fun, v) > 1 for v in free):
            continue
        # ...and must not collide with any WITH-loop index variable in the
        # function (which would capture them at a use site).
        binder_names = {
            e.generator.var for e in walk_exprs(fun.body)
            if isinstance(e, WithLoop)
        }
        if free & binder_names:
            continue

        replaced = [False]

        def rewrite(e: Expr) -> Expr:
            if (
                isinstance(e, Select)
                and isinstance(e.array, Var)
                and e.array.name == name
            ):
                replaced[0] = True
                return substitute(body, {ivar: e.index})
            return e

        new_body_block = map_stmt_exprs(fun.body, rewrite)
        if replaced[0]:
            return dataclasses.replace(fun, body=new_body_block)
    return None


def wlfold_pass(program: Program) -> Program:
    """Fold producer/consumer WITH-loop pairs to a fixpoint per function."""
    new_funs = []
    for fun in program.functions:
        fun = _eliminate_shape_uses(fun)
        for _ in range(32):  # bounded fixpoint
            folded = _fold_one(fun)
            if folded is None:
                break
            fun = folded
        new_funs.append(fun)
    return program.with_functions(new_funs)
