"""AST rewriting utilities shared by the optimization passes.

The generic traversal primitives (child iteration, identity-preserving
child mapping, full-tree walking) live in :mod:`repro.sac.ast_visit`;
this module layers the optimizer-specific pieces on top: bottom-up
rewriting, capture-aware substitution, structural keys and
alpha-renaming.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from ..ast_nodes import (
    Assign,
    Block,
    DoWhile,
    Expr,
    ExprStmt,
    FoldOp,
    For,
    GenarrayOp,
    Generator,
    If,
    ModarrayOp,
    Node,
    Return,
    Stmt,
    Var,
    While,
    WithLoop,
)
from ..ast_visit import map_child_exprs, walk_exprs

__all__ = [
    "map_expr",
    "map_stmt_exprs",
    "walk_exprs",
    "expr_vars",
    "stmt_vars_read",
    "assigned_names",
    "substitute",
    "ast_equal",
    "ast_key",
    "rename_vars",
    "fresh_namer",
]


def map_expr(expr: Expr, fn: Callable[[Expr], Expr]) -> Expr:
    """Bottom-up expression rewrite: children first, then ``fn`` on the
    rebuilt node."""
    rebuilt = map_child_exprs(expr, lambda e: map_expr(e, fn))
    return fn(rebuilt)


def map_stmt_exprs(stmt: Stmt, fn: Callable[[Expr], Expr]) -> Stmt:
    """Apply a bottom-up expression rewrite to every expression in a
    statement tree."""
    if isinstance(stmt, Assign):
        return dataclasses.replace(stmt, value=map_expr(stmt.value, fn))
    if isinstance(stmt, Return):
        return dataclasses.replace(stmt, value=map_expr(stmt.value, fn))
    if isinstance(stmt, ExprStmt):
        return dataclasses.replace(stmt, expr=map_expr(stmt.expr, fn))
    if isinstance(stmt, Block):
        return dataclasses.replace(
            stmt, statements=tuple(map_stmt_exprs(s, fn) for s in stmt.statements)
        )
    if isinstance(stmt, If):
        return dataclasses.replace(
            stmt,
            cond=map_expr(stmt.cond, fn),
            then=map_stmt_exprs(stmt.then, fn),
            orelse=map_stmt_exprs(stmt.orelse, fn) if stmt.orelse else None,
        )
    if isinstance(stmt, For):
        return dataclasses.replace(
            stmt,
            init=map_stmt_exprs(stmt.init, fn),
            cond=map_expr(stmt.cond, fn),
            update=map_stmt_exprs(stmt.update, fn),
            body=map_stmt_exprs(stmt.body, fn),
        )
    if isinstance(stmt, While):
        return dataclasses.replace(
            stmt, cond=map_expr(stmt.cond, fn), body=map_stmt_exprs(stmt.body, fn)
        )
    if isinstance(stmt, DoWhile):
        return dataclasses.replace(
            stmt, body=map_stmt_exprs(stmt.body, fn), cond=map_expr(stmt.cond, fn)
        )
    raise TypeError(f"unknown statement {type(stmt).__name__}")


def expr_vars(expr: Expr) -> set[str]:
    """Free-ish variable names referenced in an expression (includes
    WITH-loop index variables bound within — callers that care use
    :func:`substitute`, which respects binding)."""
    return {e.name for e in walk_exprs(expr) if isinstance(e, Var)}


def stmt_vars_read(stmt: Stmt) -> set[str]:
    out: set[str] = set()
    for e in walk_exprs(stmt):
        if isinstance(e, Var):
            out.add(e.name)
    return out


def assigned_names(stmt: Stmt) -> set[str]:
    """All names assigned anywhere in a statement tree."""
    out: set[str] = set()
    if isinstance(stmt, Assign):
        out.add(stmt.target)
    elif isinstance(stmt, Block):
        for s in stmt.statements:
            out |= assigned_names(s)
    elif isinstance(stmt, If):
        out |= assigned_names(stmt.then)
        if stmt.orelse:
            out |= assigned_names(stmt.orelse)
    elif isinstance(stmt, For):
        out |= assigned_names(stmt.init)
        out |= assigned_names(stmt.update)
        out |= assigned_names(stmt.body)
    elif isinstance(stmt, (While, DoWhile)):
        out |= assigned_names(stmt.body)
    return out


def substitute(expr: Expr, mapping: dict[str, Expr]) -> Expr:
    """Capture-aware substitution of variables by expressions.

    A WITH-loop generator binds its index variable: substitution does not
    descend for that name inside the loop's operation body/bounds (bounds
    are evaluated outside the binding, but SAC scoping makes the index
    variable visible only in the operation — we block it everywhere
    inside the WITH-loop for simplicity and safety)."""

    def rewrite(e: Expr) -> Expr:
        if isinstance(e, Var) and e.name in mapping:
            return mapping[e.name]
        return e

    def go(e: Expr, blocked: frozenset[str]) -> Expr:
        if isinstance(e, Var):
            if e.name in mapping and e.name not in blocked:
                return mapping[e.name]
            return e
        if isinstance(e, WithLoop):
            inner_blocked = blocked | {e.generator.var}

            def node_go(n: Node, blk: frozenset[str]) -> Node:
                changes = {}
                for f in dataclasses.fields(n):
                    v = getattr(n, f.name)
                    if isinstance(v, Expr):
                        nv = go(v, blk)
                        if nv is not v:
                            changes[f.name] = nv
                    elif isinstance(v, tuple) and v and all(
                        isinstance(x, Expr) for x in v
                    ):
                        nv = tuple(go(x, blk) for x in v)
                        if any(a is not b for a, b in zip(nv, v)):
                            changes[f.name] = nv
                    elif isinstance(v, (GenarrayOp, ModarrayOp, FoldOp, Generator)):
                        nv = node_go(v, blk)
                        if nv is not v:
                            changes[f.name] = nv
                return dataclasses.replace(n, **changes) if changes else n

            # Generator bounds are evaluated outside the index binding in
            # SAC; still, an index variable shadowing a substituted name
            # must block substitution in the body.  Bounds first:
            gen = node_go(e.generator, blocked)
            # ... but the index variable cannot occur in its own bounds;
            # rebuild the generator with outer blocking, the operation
            # with the inner blocking.
            op = node_go(e.operation, inner_blocked)
            return dataclasses.replace(e, generator=gen, operation=op)
        changes = {}
        for f in dataclasses.fields(e):
            v = getattr(e, f.name)
            if isinstance(v, Expr):
                nv = go(v, blocked)
                if nv is not v:
                    changes[f.name] = nv
            elif isinstance(v, tuple) and v and all(isinstance(x, Expr) for x in v):
                nv = tuple(go(x, blocked) for x in v)
                if any(a is not b for a, b in zip(nv, v)):
                    changes[f.name] = nv
        return dataclasses.replace(e, **changes) if changes else e

    return go(expr, frozenset())


def ast_key(node) -> object:
    """Hashable structural key of an AST fragment, ignoring positions."""
    if isinstance(node, Node):
        parts = [type(node).__name__]
        for f in dataclasses.fields(node):
            if f.name == "pos":
                continue
            parts.append(ast_key(getattr(node, f.name)))
        return tuple(parts)
    if isinstance(node, tuple):
        return tuple(ast_key(x) for x in node)
    return node


def ast_equal(a, b) -> bool:
    """Structural equality ignoring source positions."""
    return ast_key(a) == ast_key(b)


def rename_vars(expr: Expr, mapping: dict[str, str]) -> Expr:
    """Rename variables (used for alpha-conversion during inlining)."""
    return substitute(expr, {k: Var(v) for k, v in mapping.items()})


def fresh_namer(prefix: str = "_t"):
    """A generator of fresh names, stable within one pass invocation."""
    counter = [0]

    def fresh(base: str = "") -> str:
        counter[0] += 1
        return f"{prefix}{counter[0]}_{base}" if base else f"{prefix}{counter[0]}"

    return fresh
