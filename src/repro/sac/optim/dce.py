"""Dead code elimination.

Removes assignments to names that are never read anywhere in the
function (SAC expressions are pure, so dropping an unused binding cannot
change behaviour).  Name-based and conservative: if a name is read
anywhere — including inside loops or branches — every assignment to it
is kept.  Runs to a fixpoint because removing one dead assignment can
kill the uses that kept another alive.
"""

from __future__ import annotations

import dataclasses

from ..ast_nodes import (
    Assign,
    Block,
    DoWhile,
    ExprStmt,
    For,
    FunDef,
    If,
    Program,
    Return,
    Stmt,
    Var,
    While,
)
from ..ast_visit import walk_exprs

__all__ = ["dce_pass"]


def _read_names(fun: FunDef) -> set[str]:
    return {e.name for e in walk_exprs(fun.body) if isinstance(e, Var)}


def _strip_block(block: Block, dead: set[str]) -> Block:
    out: list[Stmt] = []
    for stmt in block.statements:
        s = _strip_stmt(stmt, dead)
        if s is not None:
            out.append(s)
    return dataclasses.replace(block, statements=tuple(out))


def _strip_stmt(stmt: Stmt, dead: set[str]) -> Stmt | None:
    if isinstance(stmt, Assign):
        return None if stmt.target in dead else stmt
    if isinstance(stmt, If):
        return dataclasses.replace(
            stmt,
            then=_strip_block(stmt.then, dead),
            orelse=_strip_block(stmt.orelse, dead) if stmt.orelse else None,
        )
    if isinstance(stmt, (For, While, DoWhile)):
        # Loop-carried state: leave loop bodies untouched (an assignment
        # inside a loop may feed the next iteration through its own name).
        return stmt
    if isinstance(stmt, (Return, ExprStmt, Block)):
        if isinstance(stmt, Block):
            return _strip_block(stmt, dead)
        return stmt
    return stmt


def dce_pass(program: Program) -> Program:
    new_funs = []
    for fun in program.functions:
        while True:
            read = _read_names(fun)
            assigned = {
                s.target
                for s in fun.body.statements
                if isinstance(s, Assign)
            }
            dead = assigned - read
            if not dead:
                break
            fun = dataclasses.replace(fun, body=_strip_block(fun.body, dead))
        new_funs.append(fun)
    return program.with_functions(new_funs)
