"""In-place-update annotation (the classic SAC "ipup" optimization).

Runs the reuse certification of :mod:`repro.sac.analysis.reuse` over the
(already optimized) program and attaches a
:class:`~repro.sac.ast_nodes.ReuseHint` to every WITH-loop whose frame
buffer was proven reusable — a dead, function-owned, unaliased operand.
The pass itself rewrites nothing semantic; it records *proofs* on the
IR.  The code generator consumes them: a hinted ``modarray`` loop skips
the frame copy and writes into the operand's buffer directly, which is
bit-identical because the body is always materialized before the write
(NumPy copies on overlapping assignment).

Scheduled last — after folding, unrolling and DCE have settled the
loop structure and liveness the certificates reason about.  Any later
pass that rewrites loops would have to re-run certification; the
analysis side enforces this with SAC501, which rejects a hint the
facts no longer support.
"""

from __future__ import annotations

import dataclasses

from ..ast_nodes import (
    Assign,
    Block,
    DoWhile,
    Expr,
    ExprStmt,
    For,
    FunDef,
    If,
    Program,
    Return,
    ReuseHint,
    Stmt,
    While,
    WithLoop,
)
from ..ast_visit import map_child_exprs

__all__ = ["ipup_pass"]


def ipup_pass(program: Program) -> Program:
    """Annotate certified WITH-loops with buffer-reuse hints."""
    from ..analysis.reuse import certify_program

    hints: dict[int, ReuseHint] = {}
    for cert in certify_program(program):
        if cert.buffer_reuse and cert.wl is not None:
            hints[id(cert.wl)] = ReuseHint(
                buffer_reuse=True,
                destructive=cert.destructive,
                frame=cert.frame,
            )
    if not hints:
        return program
    new_funs = []
    changed = False
    for fun in program.functions:
        new_fun = _annotate_fun(fun, hints)
        changed = changed or new_fun is not fun
        new_funs.append(new_fun)
    return program.with_functions(new_funs) if changed else program


def _annotate_fun(fun: FunDef, hints: dict[int, ReuseHint]) -> FunDef:
    body = _annotate_block(fun.body, hints)
    return fun if body is fun.body else dataclasses.replace(fun, body=body)


def _annotate_block(block: Block, hints: dict[int, ReuseHint]) -> Block:
    stmts = tuple(_annotate_stmt(s, hints) for s in block.statements)
    if all(a is b for a, b in zip(stmts, block.statements)):
        return block
    return dataclasses.replace(block, statements=stmts)


def _annotate_stmt(stmt: Stmt, hints: dict[int, ReuseHint]) -> Stmt:
    if isinstance(stmt, Assign):
        value = _annotate_expr(stmt.value, hints)
        return (stmt if value is stmt.value
                else dataclasses.replace(stmt, value=value))
    if isinstance(stmt, Return):
        value = _annotate_expr(stmt.value, hints)
        return (stmt if value is stmt.value
                else dataclasses.replace(stmt, value=value))
    if isinstance(stmt, ExprStmt):
        expr = _annotate_expr(stmt.expr, hints)
        return (stmt if expr is stmt.expr
                else dataclasses.replace(stmt, expr=expr))
    if isinstance(stmt, Block):
        return _annotate_block(stmt, hints)
    if isinstance(stmt, If):
        cond = _annotate_expr(stmt.cond, hints)
        then = _annotate_block(stmt.then, hints)
        orelse = (_annotate_block(stmt.orelse, hints)
                  if stmt.orelse is not None else None)
        if cond is stmt.cond and then is stmt.then \
                and orelse is stmt.orelse:
            return stmt
        return dataclasses.replace(stmt, cond=cond, then=then,
                                   orelse=orelse)
    if isinstance(stmt, While):
        cond = _annotate_expr(stmt.cond, hints)
        body = _annotate_block(stmt.body, hints)
        if cond is stmt.cond and body is stmt.body:
            return stmt
        return dataclasses.replace(stmt, cond=cond, body=body)
    if isinstance(stmt, DoWhile):
        cond = _annotate_expr(stmt.cond, hints)
        body = _annotate_block(stmt.body, hints)
        if cond is stmt.cond and body is stmt.body:
            return stmt
        return dataclasses.replace(stmt, cond=cond, body=body)
    if isinstance(stmt, For):
        init = _annotate_stmt(stmt.init, hints)
        cond = _annotate_expr(stmt.cond, hints)
        update = _annotate_stmt(stmt.update, hints)
        body = _annotate_block(stmt.body, hints)
        if init is stmt.init and cond is stmt.cond \
                and update is stmt.update and body is stmt.body:
            return stmt
        return dataclasses.replace(stmt, init=init, cond=cond,
                                   update=update, body=body)
    return stmt


def _annotate_expr(expr: Expr, hints: dict[int, ReuseHint]) -> Expr:
    # Children first: certificates only attach to statement-level loops,
    # but the recursion keeps the pass total over any expression shape.
    hint = hints.get(id(expr))
    new = map_child_exprs(expr, lambda e: _annotate_expr(e, hints))
    if hint is not None and isinstance(new, WithLoop):
        new = dataclasses.replace(new, hint=hint)
    return new
