"""Constant folding and compile-time evaluation.

Folds arithmetic on literals, selections into literal vectors, and —
the part that matters for stencil specialization — calls of *pure*
functions whose arguments are fully constant (e.g. ``dist_class([0, 2,
1])``), evaluated with a private interpreter over the current program.
Results must be scalars or small vectors to be re-literalized.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..ast_nodes import (
    Assign,
    BinOp,
    BoolLit,
    Call,
    DoubleLit,
    Expr,
    FunDef,
    IntLit,
    Program,
    Select,
    UnOp,
    VectorLit,
)
from ..builtins import apply_binop, apply_unop, is_builtin
from ..errors import SacError
from ..interp import FunctionTable, Interpreter, InterpOptions
from .rewrite import map_stmt_exprs

__all__ = ["constfold_pass", "literal_value", "make_literal"]

#: Largest vector literal the folder will materialize.
_MAX_FOLD_ELEMENTS = 64


def literal_value(expr: Expr):
    """The Python/NumPy value of a literal expression, or None."""
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, DoubleLit):
        return expr.value
    if isinstance(expr, BoolLit):
        return expr.value
    if isinstance(expr, VectorLit):
        vals = [literal_value(e) for e in expr.elements]
        if any(v is None for v in vals):
            return None
        arr = np.asarray(vals)
        if np.issubdtype(arr.dtype, np.integer):
            return arr.astype(np.int64)
        if np.issubdtype(arr.dtype, np.floating):
            return arr.astype(np.float64)
        if arr.dtype == np.bool_:
            return arr
        return None
    if isinstance(expr, UnOp) and expr.op == "-":
        inner = literal_value(expr.operand)
        if isinstance(inner, (int, float)) and not isinstance(inner, bool):
            return -inner
    return None


def make_literal(value) -> Expr | None:
    """Re-literalize a value; None when it cannot be represented."""
    if isinstance(value, bool):
        return BoolLit(value)
    if isinstance(value, (int, np.integer)):
        return IntLit(int(value))
    if isinstance(value, (float, np.floating)):
        return DoubleLit(float(value))
    if isinstance(value, np.ndarray):
        if value.size > _MAX_FOLD_ELEMENTS:
            return None
        if value.ndim == 1:
            elems = tuple(make_literal(v) for v in value.tolist())
            if any(e is None for e in elems):
                return None
            if value.dtype == np.float64:
                elems = tuple(
                    DoubleLit(float(v)) for v in value.tolist()
                )
            return VectorLit(elems)
        # Nested literals for small matrices.
        rows = tuple(make_literal(row) for row in value)
        if any(r is None for r in rows):
            return None
        return VectorLit(rows)
    return None


class _Folder:
    def __init__(self, program: Program):
        self.pure_names = self._pure_function_names(program)
        table = FunctionTable()
        table.update(program)
        self.interp = Interpreter(table, InterpOptions(vectorize=True))

    @staticmethod
    def _pure_function_names(program: Program) -> set[str]:
        # Everything in SAC is pure; restrict compile-time evaluation to
        # straight-line inline functions to keep it cheap and terminating.
        from .inline import _is_straight_line

        by_name: dict[str, list[FunDef]] = {}
        for f in program.functions:
            by_name.setdefault(f.name, []).append(f)
        return {
            name
            for name, funs in by_name.items()
            if len(funs) == 1 and _is_straight_line(funs[0])
        }

    def fold(self, expr: Expr) -> Expr:
        if isinstance(expr, BinOp):
            lv = literal_value(expr.left)
            rv = literal_value(expr.right)
            if lv is not None and rv is not None:
                try:
                    lit = make_literal(apply_binop(expr.op, lv, rv))
                except SacError:
                    return expr
                if lit is not None:
                    return lit
            return self._algebraic(expr)
        if isinstance(expr, UnOp):
            v = literal_value(expr.operand)
            if v is not None:
                try:
                    lit = make_literal(apply_unop(expr.op, v))
                except SacError:
                    return expr
                if lit is not None:
                    return lit
            return expr
        if isinstance(expr, Select):
            av = literal_value(expr.array)
            iv = literal_value(expr.index)
            if av is not None and iv is not None:
                try:
                    lit = make_literal(self.interp.select(av, iv))
                except SacError:
                    return expr
                if lit is not None:
                    return lit
            return expr
        if isinstance(expr, Call):
            vals = [literal_value(a) for a in expr.args]
            if any(v is None for v in vals):
                return expr
            if not (is_builtin(expr.name) or expr.name in self.pure_names):
                return expr
            try:
                result = self.interp.apply_named(expr.name, vals)
            except SacError:
                return expr
            lit = make_literal(result)
            return lit if lit is not None else expr
        return expr

    @staticmethod
    def _algebraic(expr: BinOp) -> Expr:
        """A few safe identities: x*1, 1*x, x+0, 0+x, x-0 on scalars.

        Multiplication by literal 0 is *not* rewritten to 0 — the operand
        shape would be lost (0 * shape(a) is the canonical zero-vector
        idiom and must keep its vector result)."""
        lv = literal_value(expr.left)
        rv = literal_value(expr.right)
        # Only integer identities are type-safe to drop: adding a double
        # 0.0 to an int operand would have promoted it.
        is_int = lambda v: type(v) is int  # noqa: E731
        if expr.op == "*":
            if is_int(lv) and lv == 1:
                return expr.right
            if is_int(rv) and rv == 1:
                return expr.left
        if expr.op == "+":
            if is_int(lv) and lv == 0:
                return expr.right
            if is_int(rv) and rv == 0:
                return expr.left
        if expr.op == "-":
            if is_int(rv) and rv == 0:
                return expr.left
        return expr


def constfold_pass(program: Program) -> Program:
    """Fold constants in every function body."""
    folder = _Folder(program)
    new_funs = []
    for fun in program.functions:
        body = map_stmt_exprs(fun.body, folder.fold)
        new_funs.append(dataclasses.replace(fun, body=body))
    return program.with_functions(new_funs)
