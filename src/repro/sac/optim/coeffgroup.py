"""Coefficient grouping — the 27-multiplication → 4-multiplication
stencil optimization of the paper's §5.

After unrolling, a stencil sum looks like::

    c[[0]]*u[iv+o1] + c[[1]]*u[iv+o2] + c[[1]]*u[iv+o3] + ...

Many terms share the same coefficient *expression* (structurally equal
modulo source positions).  The pass flattens ``+`` chains, groups terms
by their coefficient factor, and rebuilds::

    c[[0]]*(u[iv+o1]) + c[[1]]*(u[iv+o2] + u[iv+o3]) + ...

Multiplications drop from one-per-term to one-per-distinct-coefficient —
for the MG stencils, from 27 to 4 (or 3 where a coefficient is zero and
the term list never mentions it).  Terms without a multiplicative
structure are left in place, appended after the grouped part.
"""

from __future__ import annotations

import dataclasses

from ..ast_nodes import BinOp, Call, DoubleLit, Expr, IntLit, Program
from .rewrite import ast_key, map_stmt_exprs

__all__ = ["coeffgroup_pass", "group_sum"]

#: Only restructure sums with at least this many terms.  Two suffices:
#: grouping fires only when some coefficient repeats, and the bottom-up
#: rewrite needs to re-group chains whose inner parts were grouped
#: already (a 27-term stencil reaches the top as a 4-ish-term chain).
_MIN_TERMS = 2


def _flatten_sum(expr: Expr, out: list[Expr]) -> bool:
    """Collect the terms of a ``+`` chain; False if not a sum."""
    if isinstance(expr, BinOp) and expr.op == "+":
        return _flatten_sum(expr.left, out) and _flatten_sum(expr.right, out)
    out.append(expr)
    return True


def _coefficient_split(term: Expr) -> tuple[Expr, Expr] | None:
    """Split ``coef * rest``; the coefficient is the factor that looks
    like a lookup/constant (Select, literal, Var), preferring the left
    factor as the stencil idiom writes coefficients first."""
    if not (isinstance(term, BinOp) and term.op == "*"):
        return None
    left, right = term.left, term.right

    def is_cheap(e: Expr) -> bool:
        from ..ast_nodes import Select, Var

        return isinstance(e, (Select, Var, IntLit, DoubleLit))

    if is_cheap(left):
        return left, right
    if is_cheap(right):
        return right, left
    return None


def group_sum(expr: Expr) -> Expr:
    """Group a flattened sum by structurally-equal coefficients."""
    terms: list[Expr] = []
    if not _flatten_sum(expr, terms) or len(terms) < _MIN_TERMS:
        return expr
    groups: dict[object, tuple[Expr, list[Expr]]] = {}
    passthrough: list[Expr] = []
    order: list[object] = []
    for term in terms:
        split = _coefficient_split(term)
        if split is None:
            passthrough.append(term)
            continue
        coef, rest = split
        key = ast_key(coef)
        if key not in groups:
            groups[key] = (coef, [])
            order.append(key)
        groups[key][1].append(rest)
    if not groups or all(len(g[1]) == 1 for g in groups.values()):
        return expr  # nothing shared: keep the original form

    def chain_sum(items: list[Expr]) -> Expr:
        acc = items[0]
        for t in items[1:]:
            acc = BinOp("+", acc, t)
        return acc

    rebuilt: list[Expr] = []
    for key in order:
        coef, rests = groups[key]
        rebuilt.append(BinOp("*", coef, chain_sum(rests)))
    rebuilt.extend(passthrough)
    return chain_sum(rebuilt)


def coeffgroup_pass(program: Program) -> Program:
    """Apply coefficient grouping to every sum in the program."""

    def rewrite(e: Expr) -> Expr:
        # Only rewrite at the *top* of a '+' chain: if the parent is also
        # a '+', the parent's rewrite subsumes this one.  map_stmt_exprs
        # is bottom-up, so guard by doing the rewrite anywhere and
        # relying on idempotence (grouping a grouped sum is a no-op
        # because each coefficient then appears once).
        if isinstance(e, BinOp) and e.op == "+":
            return group_sum(e)
        return e

    new_funs = []
    for fun in program.functions:
        body = map_stmt_exprs(fun.body, rewrite)
        new_funs.append(dataclasses.replace(fun, body=body))
    return program.with_functions(new_funs)
