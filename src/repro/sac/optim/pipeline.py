"""The optimization pipeline.

Pass order mirrors the SAC compiler's high-level strategy:

1. **inline** — expose library WITH-loops at their use sites,
2. **constfold** — literalize bounds/coefficient lookups (compile-time
   evaluation of pure calls),
3. **wlfold** — fuse producer/consumer WITH-loops ([28]),
4. **unroll** — unroll constant-bounded stencil folds,
5. **constfold** again — evaluate per-offset lookups the unroll exposed,
6. **coeffgroup** — group equal stencil coefficients (27 -> 4 muls, §5),
7. **cse** — share structurally equal subexpressions within
   straight-line runs,
8. **dce** — drop intermediates made dead by folding.

Each pass can be toggled (the ablation benchmarks flip them one by one).

An optional **analyze** gate (off by default) runs the static analyzer
(:mod:`repro.sac.analysis`) over the input program before any rewriting
and raises :class:`~repro.sac.errors.SacAnalysisError` on error-severity
findings, so optimization never proceeds on a program whose WITH-loops
cannot be certified.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ast_nodes import Program
from .coeffgroup import coeffgroup_pass
from .constfold import constfold_pass
from .cse import cse_pass
from .dce import dce_pass
from .inline import inline_pass
from .unroll import unroll_pass
from .wlfold import wlfold_pass

__all__ = ["PassOptions", "optimize_program", "PASS_NAMES"]

PASS_NAMES = ("inline", "constfold", "wlfold", "unroll", "coeffgroup",
              "cse", "dce")


@dataclass(frozen=True)
class PassOptions:
    """Which passes run (all on by default)."""

    inline: bool = True
    constfold: bool = True
    wlfold: bool = True
    unroll: bool = True
    coeffgroup: bool = True
    cse: bool = True
    dce: bool = True
    #: Run the static analyzer first; raise on error-severity findings.
    analyze: bool = False

    @staticmethod
    def none() -> "PassOptions":
        return PassOptions(False, False, False, False, False, False, False)

    def enabled(self) -> list[str]:
        return [n for n in PASS_NAMES if getattr(self, n)]


def optimize_program(program: Program,
                     options: PassOptions | None = None) -> Program:
    """Run the enabled passes in pipeline order."""
    opts = options or PassOptions()
    if opts.analyze:
        _analysis_gate(program)
    if opts.inline:
        program = inline_pass(program)
    if opts.constfold:
        program = constfold_pass(program)
    if opts.wlfold:
        program = wlfold_pass(program)
    if opts.unroll:
        program = unroll_pass(program)
        if opts.constfold:
            program = constfold_pass(program)
    if opts.coeffgroup:
        program = coeffgroup_pass(program)
    if opts.cse:
        program = cse_pass(program)
    if opts.dce:
        program = dce_pass(program)
    return program


def _analysis_gate(program: Program) -> None:
    """Raise :class:`SacAnalysisError` on error-severity findings."""
    from ..analysis import analyze_program
    from ..errors import SacAnalysisError

    report = analyze_program(program)
    errors = report.errors
    if errors:
        listing = "\n".join(f"  {d}" for d in errors)
        raise SacAnalysisError(
            f"static analysis found {len(errors)} error(s):\n{listing}",
            diagnostics=errors,
            pos=errors[0].pos,
        )
