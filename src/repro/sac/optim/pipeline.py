"""The optimization pipeline.

Pass order mirrors the SAC compiler's high-level strategy:

1. **inline** — expose library WITH-loops at their use sites,
2. **constfold** — literalize bounds/coefficient lookups (compile-time
   evaluation of pure calls),
3. **wlfold** — fuse producer/consumer WITH-loops ([28]),
4. **unroll** — unroll constant-bounded stencil folds,
5. **constfold** again — evaluate per-offset lookups the unroll exposed,
6. **coeffgroup** — group equal stencil coefficients (27 -> 4 muls, §5),
7. **cse** — share structurally equal subexpressions within
   straight-line runs,
8. **dce** — drop intermediates made dead by folding,
9. **ipup** — annotate WITH-loops whose frame buffer the reuse
   certification (:mod:`repro.sac.analysis.reuse`) proves dead and
   unaliased; codegen then elides the frame copy.

Each pass can be toggled (the ablation benchmarks flip them one by one).

An optional **analyze** gate (off by default) runs the static analyzer
(:mod:`repro.sac.analysis`) over the input program before any rewriting
and raises :class:`~repro.sac.errors.SacAnalysisError` on error-severity
findings, so optimization never proceeds on a program whose WITH-loops
cannot be certified.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ast_nodes import Program

__all__ = ["PassOptions", "optimize_program", "optimize_with_report",
           "PASS_NAMES"]

PASS_NAMES = ("inline", "constfold", "wlfold", "unroll", "coeffgroup",
              "cse", "dce", "ipup")


@dataclass(frozen=True, kw_only=True)
class PassOptions:
    """Which passes run (all on by default)."""

    inline: bool = True
    constfold: bool = True
    wlfold: bool = True
    unroll: bool = True
    coeffgroup: bool = True
    cse: bool = True
    dce: bool = True
    ipup: bool = True
    #: Run the static analyzer first; raise on error-severity findings.
    analyze: bool = False
    #: Schedule the interacting pass pairs (constfold/wlfold, cse/dce)
    #: as fixpoint groups instead of single applications.
    fixpoint: bool = False

    @staticmethod
    def none() -> "PassOptions":
        return PassOptions(inline=False, constfold=False, wlfold=False,
                           unroll=False, coeffgroup=False, cse=False,
                           dce=False, ipup=False)

    @classmethod
    def from_overrides(cls, overrides) -> "PassOptions":
        """Build options from a ``{pass_name: bool}`` mapping, rejecting
        unknown pass names with a coded error (``SAC010``)."""
        mapping = dict(overrides)
        bad = sorted(k for k in mapping if k not in PASS_NAMES)
        if bad:
            from ..errors import SacOptionError

            valid = ", ".join(PASS_NAMES)
            raise SacOptionError(
                f"unknown pass name(s) {', '.join(repr(k) for k in bad)} "
                f"in pass_overrides; valid passes: {valid}"
            )
        return cls(**mapping)

    def enabled(self) -> list[str]:
        return [n for n in PASS_NAMES if getattr(self, n)]


def optimize_program(program: Program,
                     options: PassOptions | None = None) -> Program:
    """Run the enabled passes in pipeline order."""
    program, _report = optimize_with_report(program, options)
    return program


def optimize_with_report(program: Program,
                         options: PassOptions | None = None,
                         manager=None):
    """Run the enabled passes; also return the instrumented
    :class:`~repro.sac.driver.passes.PassReport`.

    ``manager`` (a :class:`~repro.sac.driver.passes.PassManager`) may be
    supplied to accumulate metrics across several pipeline runs — a new
    one is created otherwise.
    """
    from ..driver.passes import PassManager, schedule_for

    opts = options or PassOptions()
    if opts.analyze:
        _analysis_gate(program)
    pm = manager if manager is not None else PassManager()
    program = pm.run(program, schedule_for(opts))
    return program, pm.report


def _analysis_gate(program: Program) -> None:
    """Raise :class:`SacAnalysisError` on error-severity findings."""
    from ..analysis import analyze_program
    from ..errors import SacAnalysisError

    report = analyze_program(program)
    errors = report.errors
    if errors:
        listing = "\n".join(f"  {d}" for d in errors)
        raise SacAnalysisError(
            f"static analysis found {len(errors)} error(s):\n{listing}",
            diagnostics=errors,
            pos=errors[0].pos,
        )
