"""Common subexpression elimination.

Within a straight-line region (a run of assignments), structurally equal
pure subexpressions above a triviality threshold are computed once and
bound to a fresh temporary.  SAC's purity makes every expression a
candidate; safety requires only that the free variables of a shared
subexpression are not reassigned between its occurrences, which the pass
guarantees by processing one assignment-run at a time and giving up on a
name's candidates at its (re)assignment.

WITH-loop bodies are left untouched: their subexpressions depend on the
index variable, and hoisting across the binder would change what they
mean.  (Loop-invariant hoisting out of WITH-loops is a different pass —
future work, as for the paper's compiler.)
"""

from __future__ import annotations

import dataclasses

from ..ast_nodes import (
    Assign,
    BinOp,
    Block,
    BoolLit,
    Call,
    DoubleLit,
    DoWhile,
    Expr,
    ExprStmt,
    For,
    If,
    IntLit,
    Program,
    Return,
    Select,
    Stmt,
    UnOp,
    Var,
    VectorLit,
    While,
    WithLoop,
)
from ..ast_visit import iter_child_exprs, map_child_exprs, walk_exprs
from .rewrite import ast_key, fresh_namer

__all__ = ["cse_pass"]


def _is_candidate(expr: Expr) -> bool:
    """Worth sharing: compound and pure, not a WITH-loop (its value can
    be huge; sharing those is wlfold's job) and not a bare leaf."""
    if isinstance(expr, (Var, IntLit, DoubleLit, BoolLit)):
        return False
    if isinstance(expr, WithLoop):
        return False
    return isinstance(expr, (BinOp, UnOp, Select, Call, VectorLit))


def _subexprs(expr: Expr, out: list[Expr]) -> None:
    """Collect candidate subexpressions, children before parents,
    skipping WITH-loop internals entirely."""
    if isinstance(expr, WithLoop):
        return
    for child in iter_child_exprs(expr):
        _subexprs(child, out)
    if _is_candidate(expr):
        out.append(expr)


def _replace(expr: Expr, table: dict[object, str]) -> Expr:
    """Rewrite shared subexpressions to their temp names (outside
    WITH-loops)."""
    if isinstance(expr, WithLoop):
        return expr
    key = ast_key(expr)
    if key in table:
        return Var(table[key])
    return map_child_exprs(expr, lambda e: _replace(e, table))


def _free_vars(expr: Expr) -> set[str]:
    return {e.name for e in walk_exprs(expr) if isinstance(e, Var)}


def _cse_run(stmts: list[Stmt], fresh) -> list[Stmt]:
    """CSE over one straight-line run of Assign/Return/ExprStmt."""
    # Count occurrences of each candidate across the run.
    counts: dict[object, int] = {}
    samples: dict[object, Expr] = {}
    for s in stmts:
        exprs: list[Expr] = []
        if isinstance(s, (Assign, Return)):
            _subexprs(s.value, exprs)
        elif isinstance(s, ExprStmt):
            _subexprs(s.expr, exprs)
        for e in exprs:
            k = ast_key(e)
            counts[k] = counts.get(k, 0) + 1
            samples[k] = e

    shared = {k for k, n in counts.items() if n > 1}
    if not shared:
        return stmts

    out: list[Stmt] = []
    table: dict[object, str] = {}
    for s in stmts:
        value = s.value if isinstance(s, (Assign, Return)) else (
            s.expr if isinstance(s, ExprStmt) else None
        )
        if value is not None:
            # Hoist any shared subexpression of this statement that is
            # not yet bound (children first: _subexprs is bottom-up).
            exprs: list[Expr] = []
            _subexprs(value, exprs)
            for e in exprs:
                k = ast_key(e)
                if k in shared and k not in table:
                    tmp = fresh("cse")
                    out.append(Assign(tmp, _replace(e, table)))
                    table[k] = tmp
            value = _replace(value, table)
        if isinstance(s, Assign):
            out.append(dataclasses.replace(s, value=value))
            # The assigned name invalidates every table entry reading it.
            dead = [
                k for k in table
                if s.target in _free_vars(samples[k])
            ]
            for k in dead:
                del table[k]
                shared.discard(k)
        elif isinstance(s, Return):
            out.append(dataclasses.replace(s, value=value))
        elif isinstance(s, ExprStmt):
            out.append(dataclasses.replace(s, expr=value))
        else:
            out.append(s)
    return out


def _cse_block(block: Block, fresh) -> Block:
    # Split into straight-line runs at control-flow statements; recurse
    # into their bodies independently.
    out: list[Stmt] = []
    run: list[Stmt] = []

    def flush():
        nonlocal run
        if run:
            out.extend(_cse_run(run, fresh))
            run = []

    for s in block.statements:
        if isinstance(s, (Assign, Return, ExprStmt)):
            run.append(s)
        elif isinstance(s, If):
            flush()
            out.append(dataclasses.replace(
                s,
                then=_cse_block(s.then, fresh),
                orelse=_cse_block(s.orelse, fresh) if s.orelse else None,
            ))
        elif isinstance(s, (For, While, DoWhile)):
            flush()
            out.append(dataclasses.replace(
                s, body=_cse_block(s.body, fresh)
            ))
        elif isinstance(s, Block):
            flush()
            out.append(_cse_block(s, fresh))
        else:
            flush()
            out.append(s)
    flush()
    return dataclasses.replace(block, statements=tuple(out))


def cse_pass(program: Program) -> Program:
    new_funs = []
    for fun in program.functions:
        fresh = fresh_namer(f"_cse_{fun.name}")
        new_funs.append(
            dataclasses.replace(fun, body=_cse_block(fun.body, fresh))
        )
    return program.with_functions(new_funs)
