"""Unrolling of small constant-bounded fold WITH-loops.

The stencil sum of the MG relaxation kernel is a fold over the constant
3x3x3 offset cube.  After inlining and constant folding its bounds are
literal vectors, so the loop can be unrolled at compile time into an
explicit 27-term sum with the offset vector substituted by literals.
Constant folding then evaluates the per-offset coefficient lookups and
coefficient grouping (:mod:`.coeffgroup`) restructures the sum.
"""

from __future__ import annotations

import dataclasses
import itertools

import numpy as np

from ..ast_nodes import (
    BinOp,
    Call,
    Expr,
    FoldOp,
    IntLit,
    Program,
    VectorLit,
    WithLoop,
)
from .constfold import literal_value
from .rewrite import map_stmt_exprs, substitute

__all__ = ["unroll_pass"]

#: Do not unroll folds with more points than this.
_MAX_UNROLL_POINTS = 64


def _space_points(wl: WithLoop) -> list[tuple[int, ...]] | None:
    """The concrete index vectors of a literal-bounded generator."""
    gen = wl.generator
    if gen.step is not None or gen.width is not None:
        # Unit-step only; stepped folds stay loops.
        return None
    lo = literal_value(gen.lower)
    hi = literal_value(gen.upper)
    if not isinstance(lo, np.ndarray) or not isinstance(hi, np.ndarray):
        return None
    if lo.ndim != 1 or hi.ndim != 1 or lo.shape != hi.shape:
        return None
    lo = lo + (0 if gen.lower_inclusive else 1)
    hi = hi + (1 if gen.upper_inclusive else 0)
    counts = np.maximum(hi - lo, 0)
    total = int(np.prod(counts))
    if total == 0 or total > _MAX_UNROLL_POINTS:
        return None
    ranges = [range(int(a), int(b)) for a, b in zip(lo, hi)]
    return list(itertools.product(*ranges))


def _unroll_fold(wl: WithLoop) -> Expr | None:
    op = wl.operation
    if not isinstance(op, FoldOp):
        return None
    points = _space_points(wl)
    if points is None:
        return None
    var = wl.generator.var
    acc: Expr = op.neutral
    neutral = literal_value(op.neutral)
    # Drop a literal neutral element of + / * chains.
    skip_neutral = (
        (op.fun == "+" and neutral == 0)
        or (op.fun == "*" and neutral == 1)
    ) and isinstance(neutral, (int, float))
    terms = []
    for pt in points:
        iv_lit = VectorLit(tuple(IntLit(int(x)) for x in pt))
        terms.append(substitute(op.body, {var: iv_lit}))
    if skip_neutral:
        acc = terms[0]
        rest = terms[1:]
    else:
        rest = terms
    for t in rest:
        if op.fun in ("+", "*"):
            acc = BinOp(op.fun, acc, t)
        else:
            acc = Call(op.fun, (acc, t))
    return acc


def unroll_pass(program: Program) -> Program:
    """Unroll every eligible fold WITH-loop in the program."""

    def rewrite(e: Expr) -> Expr:
        if isinstance(e, WithLoop):
            unrolled = _unroll_fold(e)
            if unrolled is not None:
                return unrolled
        return e

    new_funs = []
    for fun in program.functions:
        body = map_stmt_exprs(fun.body, rewrite)
        new_funs.append(dataclasses.replace(fun, body=body))
    return program.with_functions(new_funs)
