"""Function inlining.

Inlines calls to functions that

* are marked ``inline`` in the source,
* have exactly one overload (so resolution needs no type information),
* have a straight-line body (assignments followed by one ``return``),
* are not (mutually) recursive.

Inlining is *pure expression substitution*: the inlinee's WITH-loop
index variables are alpha-renamed to fresh names, locals are forward-
substituted into the return expression, and parameters are replaced by
the argument expressions.  This works in any context — in particular
inside WITH-loop bodies, where hoisting statements would be unsound.

Because SAC is pure, substitution can duplicate expressions without
changing semantics; to avoid duplicating *work*, a call is left alone
when substitution would replicate a non-trivial expression (one
containing a WITH-loop or a call) more than once.
"""

from __future__ import annotations

import dataclasses

from ..ast_nodes import (
    Assign,
    Block,
    Call,
    Expr,
    FoldOp,
    FunDef,
    GenarrayOp,
    Generator,
    IntLit,
    DoubleLit,
    BoolLit,
    ModarrayOp,
    Node,
    Program,
    Return,
    Stmt,
    Var,
    WithLoop,
)
from .rewrite import fresh_namer, map_stmt_exprs, substitute, walk_exprs

__all__ = ["inline_pass"]

#: Iterations of the fixpoint loop (inlined bodies may contain more calls).
_MAX_ROUNDS = 8


def _is_straight_line(fun: FunDef) -> bool:
    stmts = fun.body.statements
    if not stmts or not isinstance(stmts[-1], Return):
        return False
    return all(isinstance(s, Assign) for s in stmts[:-1])


def _calls_in(fun: FunDef) -> set[str]:
    out = set()
    for s in fun.body.statements:
        for e in walk_exprs(s):
            if isinstance(e, Call):
                out.add(e.name)
    return out


def _inlinable_functions(program: Program) -> dict[str, FunDef]:
    by_name: dict[str, list[FunDef]] = {}
    for f in program.functions:
        by_name.setdefault(f.name, []).append(f)
    candidates = {
        name: funs[0]
        for name, funs in by_name.items()
        if len(funs) == 1 and funs[0].inline and _is_straight_line(funs[0])
    }

    # Drop anything on a call cycle (conservative reachability check).
    def reaches_self(name: str) -> bool:
        seen = set()
        stack = list(_calls_in(candidates[name]))
        while stack:
            cur = stack.pop()
            if cur == name:
                return True
            if cur in seen:
                continue
            seen.add(cur)
            if cur in candidates:
                stack.extend(_calls_in(candidates[cur]))
        return False

    return {n: f for n, f in candidates.items() if not reaches_self(n)}


def _map_node_children(n: Node, fn) -> Node:
    changes = {}
    for f in dataclasses.fields(n):
        v = getattr(n, f.name)
        if isinstance(v, Expr):
            nv = fn(v)
            if nv is not v:
                changes[f.name] = nv
        elif isinstance(v, tuple) and v and all(isinstance(x, Expr) for x in v):
            nv = tuple(fn(x) for x in v)
            if any(a is not b for a, b in zip(nv, v)):
                changes[f.name] = nv
        elif isinstance(v, (GenarrayOp, ModarrayOp, FoldOp, Generator)):
            nv = _map_node_children(v, fn)
            if nv is not v:
                changes[f.name] = nv
    return dataclasses.replace(n, **changes) if changes else n


def _rename_binders(expr: Expr, fresh) -> Expr:
    """Alpha-rename every WITH-loop index variable to a fresh name."""

    def go(e: Expr) -> Expr:
        if not isinstance(e, WithLoop):
            return _map_node_children(e, go)
        gen = e.generator
        new_var = fresh(gen.var)
        gen2 = dataclasses.replace(
            gen,
            lower=go(gen.lower),
            upper=go(gen.upper),
            step=go(gen.step) if gen.step else None,
            width=go(gen.width) if gen.width else None,
            var=new_var,
        )
        op2 = _map_node_children(e.operation, go)
        op2 = _map_node_children(
            op2, lambda b: substitute(b, {gen.var: Var(new_var)})
        )
        return dataclasses.replace(e, generator=gen2, operation=op2)

    return go(expr)


def _is_trivial(expr: Expr) -> bool:
    """Cheap to duplicate: variables and literals."""
    return isinstance(expr, (Var, IntLit, DoubleLit, BoolLit))


def _is_expensive(expr: Expr) -> bool:
    """Duplicating this expression would duplicate real work.

    Structural queries (``shape``/``dim``) are free; WITH-loops and any
    other call are not."""
    for e in walk_exprs(expr):
        if isinstance(e, WithLoop):
            return True
        if isinstance(e, Call) and e.name not in ("shape", "dim"):
            return True
    return False


def _count_uses(exprs: list[Expr], name: str) -> int:
    count = 0
    for ex in exprs:
        for e in walk_exprs(ex):
            if isinstance(e, Var) and e.name == name:
                count += 1
    return count


class _Inliner:
    def __init__(self, inlinables: dict[str, FunDef]):
        self.inlinables = inlinables
        self.fresh = fresh_namer("_inl")
        self.changed = False

    def rewrite(self, e: Expr) -> Expr:
        """Bottom-up rewrite hook for map_stmt_exprs/map_expr."""
        if isinstance(e, Call) and e.name in self.inlinables:
            expanded = self.expand_call(e)
            if expanded is not None:
                self.changed = True
                return expanded
        return e

    def expand_call(self, call: Call) -> Expr | None:
        fun = self.inlinables[call.name]
        if fun.arity != len(call.args):
            return None  # arity mismatch: leave for runtime diagnosis
        stmts = fun.body.statements
        assigns = [s for s in stmts[:-1]]
        ret = stmts[-1]
        assert isinstance(ret, Return)

        # Work-duplication guard: every expensive argument/local value
        # must be used at most once downstream.
        downstream: dict[str, list[Expr]] = {}
        tail_exprs: list[Expr] = [s.value for s in assigns] + [ret.value]
        for i, s in enumerate(assigns):
            downstream[s.target] = tail_exprs[i + 1 :]
        for param, arg in zip(fun.params, call.args):
            if _is_trivial(arg):
                continue
            uses = _count_uses(tail_exprs, param.name)
            if uses > 1 and _is_expensive(arg):
                return None
        for s in assigns:
            if _is_expensive(s.value) and \
                    _count_uses(downstream[s.target], s.target) > 1:
                return None

        # Build the substitution environment sequentially.
        subst: dict[str, Expr] = {
            p.name: a for p, a in zip(fun.params, call.args)
        }
        for s in assigns:
            value = _rename_binders(s.value, self.fresh)
            value = substitute(value, subst)
            subst = dict(subst)
            subst[s.target] = value
        result = _rename_binders(ret.value, self.fresh)
        return substitute(result, subst)


def inline_pass(program: Program) -> Program:
    """Inline eligible calls to a fixpoint (bounded rounds)."""
    current = program
    for _ in range(_MAX_ROUNDS):
        inlinables = _inlinable_functions(current)
        if not inlinables:
            break
        inliner = _Inliner(inlinables)
        new_funs = []
        for fun in current.functions:
            body = map_stmt_exprs(fun.body, inliner.rewrite)
            new_funs.append(dataclasses.replace(fun, body=body))
        current = current.with_functions(new_funs)
        if not inliner.changed:
            break
    return current
