"""The SAC array library prelude, written in SAC itself.

This is the paper's Fig. 10 verbatim (modulo our dialect's spelling of
scalar selection) plus a handful of generally useful dimension-invariant
helpers in the same style.  Every function here runs through the same
front end and WITH-loop machinery as user programs — exactly the
"array support specified in the language itself" design the paper
advocates.
"""

from __future__ import annotations

from functools import lru_cache

from .ast_nodes import Program
from .parser import parse_program

__all__ = ["PRELUDE_SOURCE", "load_prelude"]

PRELUDE_SOURCE = """
/* ------------------------------------------------------------------ */
/* Fig. 10 — the array library functions used by the MG benchmark.    */
/* Marked inline: sac2c auto-inlines small functions; the marker makes  */
/* our pipeline do the same so WITH-loop folding can fuse them.        */
/* ------------------------------------------------------------------ */

inline double[+] genarray( int[.] shp, double val)
{
  a = with (. <= iv <= .)
      genarray( shp, val);
  return( a);
}

inline double[+] condense( int str, double[+] a)
{
  ac = with (. <= iv <= .)
       genarray( shape(a) / str,
                 a[str*iv]);
  return( ac);
}

inline double[+] scatter( int str, double[+] a)
{
  as = with (. <= iv <= . step str)
       genarray( str * shape(a),
                 a[iv/str]);
  return( as);
}

inline double[+] embed( int[.] shp, int[.] pos, double[+] a)
{
  ae = with (pos <= iv < shape(a) + pos)
       genarray( shp, a[iv-pos]);
  return( ae);
}

inline double[+] take( int[.] shp, double[+] a)
{
  at = with (. <= iv <= .)
       genarray( shp, a[iv]);
  return( at);
}

/* ------------------------------------------------------------------ */
/* General dimension-invariant helpers in the same style.             */
/* ------------------------------------------------------------------ */

/* Element count of an array. */
int count( double[+] a)
{
  n = with (0*shape(a) <= iv < shape(a))
      fold( +, 0, 1);
  return( n);
}

/* Sum / product / extrema reductions, WITH-loop spelled. */
double sum_all( double[+] a)
{
  s = with (0*shape(a) <= iv < shape(a))
      fold( +, 0.0, a[iv]);
  return( s);
}

double prod_all( double[+] a)
{
  p = with (0*shape(a) <= iv < shape(a))
      fold( *, 1.0, a[iv]);
  return( p);
}

double max_all( double[+] a)
{
  m = with (0*shape(a) <= iv < shape(a))
      fold( max, a[0*shape(a)], a[iv]);
  return( m);
}

double min_all( double[+] a)
{
  m = with (0*shape(a) <= iv < shape(a))
      fold( min, a[0*shape(a)], a[iv]);
  return( m);
}

double l2norm( double[+] a)
{
  s = with (0*shape(a) <= iv < shape(a))
      fold( +, 0.0, a[iv] * a[iv]);
  return( sqrt( s / tod(count(a))));
}

/* Elementwise maps as WITH-loops (the interpreter also extends the
   operators elementwise; these exist to cross-check that shortcut). */
double[+] add_arrays( double[+] a, double[+] b)
{
  c = with (. <= iv <= .)
      modarray( a, a[iv] + b[iv]);
  return( c);
}

double[+] sub_arrays( double[+] a, double[+] b)
{
  c = with (. <= iv <= .)
      modarray( a, a[iv] - b[iv]);
  return( c);
}

double[+] scale( double s, double[+] a)
{
  c = with (. <= iv <= .)
      modarray( a, s * a[iv]);
  return( c);
}

/* Rotate a vector left by off positions (wraps around). */
double[.] rotate_left( int off, double[.] v)
{
  n = shape(v)[[0]];
  r = with (. <= iv <= .)
      modarray( v, v[ (iv + off) % [n] ]);
  return( r);
}

/* Inner product of two vectors. */
double dot( double[.] a, double[.] b)
{
  s = with ([0] <= iv < shape(a))
      fold( +, 0.0, a[iv] * b[iv]);
  return( s);
}

/* Identity stencil helper: Manhattan distance class of an offset
   vector ov in {0,1,2}^n relative to the cube center. */
int dist_class( int[.] ov)
{
  d = sum( abs( ov - 1));
  return( d);
}

/* ------------------------------------------------------------------ */
/* Further APL-flavoured building blocks.                             */
/* ------------------------------------------------------------------ */

/* iota(n): the vector [0, 1, ..., n-1]. */
int[.] iota( int n)
{
  v = with ([0] <= iv < [n])
      genarray( [n], iv[[0]]);
  return( v);
}

/* Reverse a vector. */
double[.] reverse( double[.] v)
{
  n = shape(v)[[0]];
  r = with (. <= iv <= .)
      modarray( v, v[ [n - 1] - iv ]);
  return( r);
}

/* drop(k, v): everything after the first k elements (complement of
   take, as in APL). */
double[.] drop( int k, double[.] v)
{
  d = with (. <= iv <= .)
      genarray( shape(v) - k, v[iv + k]);
  return( d);
}

/* Matrix transpose. */
double[.,.] transpose( double[.,.] m)
{
  t = with (. <= iv <= .)
      genarray( [shape(m)[[1]], shape(m)[[0]]],
                m[ [iv[[1]], iv[[0]]] ]);
  return( t);
}

/* Clamp every element into [lo, hi]. */
double[+] clamp( double lo, double hi, double[+] a)
{
  c = with (. <= iv <= .)
      modarray( a, min( hi, max( lo, a[iv])));
  return( c);
}

/* Outer product of two vectors. */
double[.,.] outer( double[.] a, double[.] b)
{
  o = with (. <= iv <= .)
      genarray( [shape(a)[[0]], shape(b)[[0]]],
                a[[iv[[0]]]] * b[[iv[[1]]]]);
  return( o);
}
"""


@lru_cache(maxsize=1)
def load_prelude() -> Program:
    """Parse the prelude once and cache the AST."""
    return parse_program(PRELUDE_SOURCE, "<prelude>")
