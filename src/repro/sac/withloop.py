"""WITH-loop evaluation.

Two execution strategies, tried in order:

1. **Vectorized (abstract) evaluation** — bind the index variable to an
   affine :class:`~repro.sac.values.IndexView` spanning the whole index
   space and evaluate the body once; selections against it become NumPy
   slices/gathers, arithmetic becomes whole-array arithmetic.  This is
   the moral equivalent of what the SAC compiler's WITH-loop code
   generation achieves and is what makes the interpreted MG benchmark
   run at NumPy speed.
2. **Scalar loop** — the defining semantics: iterate every index vector
   of the generator and evaluate the body per point.  Used when the body
   leaves the abstract domain (data-dependent control flow, non-affine
   indexing, ``width`` filters) and as the reference implementation in
   tests.

The strategy can be forced via ``interp.options.vectorize``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from .ast_nodes import Dot, FoldOp, GenarrayOp, Generator, ModarrayOp, WithLoop
from .builtins import FOLD_UFUNCS
from .errors import SacRuntimeError, SacTypeError
from .values import (
    AbstractUnsupported,
    AffineAxis,
    IndexView,
    SpaceValue,
    as_index_vector,
    coerce_value,
    is_int_vector,
)

__all__ = ["eval_withloop", "IndexSpace"]


@dataclass(frozen=True)
class IndexSpace:
    """Resolved generator: per-axis start/step/count plus width."""

    lower: tuple[int, ...]
    step: tuple[int, ...]
    count: tuple[int, ...]
    width: tuple[int, ...]

    @property
    def rank(self) -> int:
        return len(self.lower)

    @property
    def is_affine(self) -> bool:
        return all(w == 1 for w in self.width)

    @property
    def is_empty(self) -> bool:
        return any(c == 0 for c in self.count)

    def axes(self) -> tuple[AffineAxis, ...]:
        if not self.is_affine:
            raise AbstractUnsupported("width filters are not affine")
        return tuple(
            AffineAxis(lo, st, ct)
            for lo, st, ct in zip(self.lower, self.step, self.count)
        )

    def positions(self, axis: int) -> list[int]:
        """All selected positions along one axis (width-aware)."""
        out = []
        lo, st, ct, w = (
            self.lower[axis],
            self.step[axis],
            self.count[axis],
            self.width[axis],
        )
        for k in range(ct):
            base = lo + k * st
            out.extend(base + off for off in range(w))
        return out

    def iter_indices(self):
        """Iterate all index vectors (as tuples) in row-major order."""
        return itertools.product(*(self.positions(ax) for ax in range(self.rank)))


def _resolve_bound(interp, env, expr, inclusive: bool, is_upper: bool,
                   frame_shape: tuple[int, ...] | None, rank_hint: int | None):
    """Evaluate one generator bound to an exclusive-lower/exclusive-upper
    pair component; returns the int vector (lower inclusive, upper
    exclusive convention applied by the caller)."""
    if isinstance(expr, Dot):
        if frame_shape is None:
            raise SacRuntimeError(
                "'.' generator bounds need a genarray/modarray frame"
            )
        if is_upper:
            vec = np.asarray(frame_shape, dtype=np.int64) - 1  # largest legal
        else:
            vec = np.zeros(len(frame_shape), dtype=np.int64)   # smallest legal
        return vec
    val = coerce_value(interp.eval_expr(expr, env))
    return as_index_vector(val, rank_hint)


def _resolve_space(interp, env, gen: Generator,
                   frame_shape: tuple[int, ...] | None) -> IndexSpace:
    rank_hint = len(frame_shape) if frame_shape is not None else None
    # Vector bounds may establish the rank when there is no frame.
    if rank_hint is None:
        for bexpr in (gen.lower, gen.upper):
            if not isinstance(bexpr, Dot):
                v = coerce_value(interp.eval_expr(bexpr, env))
                if is_int_vector(v):
                    rank_hint = int(v.shape[0])
                    break
    lo = _resolve_bound(interp, env, gen.lower, gen.lower_inclusive, False,
                        frame_shape, rank_hint)
    hi = _resolve_bound(interp, env, gen.upper, gen.upper_inclusive, True,
                        frame_shape, rank_hint or len(lo))
    if len(lo) != len(hi):
        raise SacTypeError(
            f"generator bounds have different lengths {len(lo)} and {len(hi)}"
        )
    if not gen.lower_inclusive:
        lo = lo + 1
    if gen.upper_inclusive:
        hi = hi + 1
    rank = len(lo)

    if gen.step is not None:
        step = as_index_vector(coerce_value(interp.eval_expr(gen.step, env)), rank)
        if np.any(step <= 0):
            raise SacRuntimeError("generator step must be positive")
    else:
        step = np.ones(rank, dtype=np.int64)
    if gen.width is not None:
        width = as_index_vector(coerce_value(interp.eval_expr(gen.width, env)), rank)
        if np.any(width <= 0) or np.any(width > step):
            raise SacRuntimeError("generator width must be in 1..step")
    else:
        width = np.ones(rank, dtype=np.int64)

    span = hi - lo
    count = np.where(span > 0, -(-span // step), 0)  # ceil division
    # With width > 1 the last block may be cut short; positions() handles
    # exact membership, count tracks full/partial blocks.
    return IndexSpace(
        tuple(int(x) for x in lo),
        tuple(int(x) for x in step),
        tuple(int(x) for x in count),
        tuple(int(x) for x in width),
    )


def _check_region(space: IndexSpace, shape: tuple[int, ...]) -> None:
    if space.rank != len(shape):
        raise SacTypeError(
            f"generator rank {space.rank} does not match frame rank {len(shape)}"
        )
    for ax in range(space.rank):
        if space.count[ax] == 0:
            continue
        positions = (space.lower[ax],
                     space.lower[ax] + (space.count[ax] - 1) * space.step[ax]
                     + space.width[ax] - 1)
        if positions[0] < 0 or positions[1] >= shape[ax]:
            raise SacRuntimeError(
                f"generator range {positions} exceeds frame extent "
                f"{shape[ax]} on axis {ax}"
            )


def _space_result_to_array(value, space: IndexSpace):
    """Normalize an abstract body result to (data, cell_shape)."""
    if isinstance(value, IndexView):
        value = value.materialize()
    if isinstance(value, SpaceValue):
        if value.space_dims != space.count:
            raise AbstractUnsupported("body result space mismatch")
        return value.data, value.cell_shape
    # Constant across the space.
    cell = np.asarray(value)
    data = np.broadcast_to(cell, space.count + cell.shape)
    return data, cell.shape


def _dtype_for(value) -> np.dtype:
    if isinstance(value, bool):
        return np.dtype(np.bool_)
    if isinstance(value, int):
        return np.dtype(np.int64)
    if isinstance(value, float):
        return np.dtype(np.float64)
    return np.asarray(value).dtype


# ---------------------------------------------------------------------------
# Vectorized path.
# ---------------------------------------------------------------------------

def _eval_vectorized(interp, env, wl: WithLoop, space: IndexSpace,
                     shp: tuple[int, ...] | None):
    iv = IndexView(space.axes())
    body_env = env.child({wl.generator.var: iv})
    op = wl.operation

    if isinstance(op, FoldOp):
        neutral = coerce_value(interp.eval_expr(op.neutral, env))
        if space.is_empty:
            return neutral
        value = interp.eval_expr(op.body, body_env)
        data, cell = _space_result_to_array(value, space)
        ufunc = FOLD_UFUNCS.get(op.fun)
        if ufunc is not None:
            reduced = ufunc.reduce(
                data.reshape((-1,) + cell) if cell else data.reshape(-1), axis=0
            )
            return coerce_value(ufunc(neutral, reduced))
        return _tree_fold(interp, op.fun, neutral, data, cell)

    # genarray / modarray produce an array.
    if isinstance(op, GenarrayOp):
        if space.is_empty:
            # Shape is known; element type defaults to the body's type
            # evaluated nowhere — use double (SAC's default element 0.0
            # has the body's type; with an empty region we cannot know it
            # without type inference, so pick the common case).
            return np.zeros(shp, dtype=np.float64)
        value = interp.eval_expr(op.body, body_env)
        data, cell = _space_result_to_array(value, space)
        out = np.zeros(tuple(shp) + cell, dtype=_dtype_for(data))
    else:
        base = interp.eval_expr(op.array, env)
        if not isinstance(base, np.ndarray):
            raise SacTypeError("modarray frame must be an array")
        if space.is_empty:
            return base.copy()
        value = interp.eval_expr(op.body, body_env)
        data, cell = _space_result_to_array(value, space)
        if cell != base.shape[space.rank:]:
            raise SacTypeError(
                f"modarray cell shape {cell} does not match frame "
                f"{base.shape[space.rank:]}"
            )
        out = base.astype(np.promote_types(base.dtype, _dtype_for(data)), copy=True)

    region = tuple(ax.as_slice(ext) for ax, ext in zip(space.axes(), out.shape))
    out[region] = data
    return out


def _tree_fold(interp, fun: str, neutral, data: np.ndarray, cell):
    """Pairwise reduction through a user-defined fold function.

    The fold function is required to be associative and commutative (SAC
    semantics), so halving reduction is legal; it is applied to whole
    arrays, which works whenever the function body is elementwise.
    """
    flat = data.reshape((-1,) + cell)
    values = flat
    try:
        while values.shape[0] > 1:
            k = values.shape[0] // 2
            left = values[:k]
            right = values[k : 2 * k]
            merged = interp.apply_named(fun, [left, right])
            if values.shape[0] % 2:
                values = np.concatenate(
                    [np.asarray(merged).reshape((k,) + cell), values[-1:]], axis=0
                )
            else:
                values = np.asarray(merged).reshape((k,) + cell)
        scalar = values[0] if cell else coerce_value(values[0])
        return interp.apply_named(fun, [neutral, scalar])
    except Exception as exc:  # noqa: BLE001 - any failure => scalar fallback
        raise AbstractUnsupported(f"tree fold failed: {exc}") from exc


# ---------------------------------------------------------------------------
# Scalar (reference) path.
# ---------------------------------------------------------------------------

def _eval_scalar(interp, env, wl: WithLoop, space: IndexSpace,
                 shp: tuple[int, ...] | None):
    op = wl.operation
    var = wl.generator.var

    if isinstance(op, FoldOp):
        acc = coerce_value(interp.eval_expr(op.neutral, env))
        for idx in space.iter_indices():
            iv = np.asarray(idx, dtype=np.int64)
            val = coerce_value(interp.eval_expr(op.body, env.child({var: iv})))
            acc = interp.apply_named(op.fun, [acc, val])
        return acc

    if isinstance(op, GenarrayOp):
        out = None
        for idx in space.iter_indices():
            iv = np.asarray(idx, dtype=np.int64)
            val = coerce_value(interp.eval_expr(op.body, env.child({var: iv})))
            if out is None:
                cell = np.asarray(val)
                out = np.zeros(tuple(shp) + cell.shape, dtype=_dtype_for(val))
            elif not np.can_cast(_dtype_for(val), out.dtype):
                out = out.astype(np.promote_types(out.dtype, _dtype_for(val)))
            out[idx] = val
        if out is None:  # empty region
            out = np.zeros(tuple(shp), dtype=np.float64)
        return out

    base = interp.eval_expr(op.array, env)
    if not isinstance(base, np.ndarray):
        raise SacTypeError("modarray frame must be an array")
    out = base.copy()
    for idx in space.iter_indices():
        iv = np.asarray(idx, dtype=np.int64)
        val = coerce_value(interp.eval_expr(op.body, env.child({var: iv})))
        out[idx] = val
    return out


# ---------------------------------------------------------------------------
# Entry point.
# ---------------------------------------------------------------------------

def eval_withloop(interp, env, wl: WithLoop):
    """Evaluate a WITH-loop expression in ``env``."""
    op = wl.operation
    shp: tuple[int, ...] | None = None
    frame_shape: tuple[int, ...] | None = None

    if isinstance(op, GenarrayOp):
        shp_val = coerce_value(interp.eval_expr(op.shape, env))
        shp_vec = as_index_vector(shp_val, None if is_int_vector(shp_val) else 1)
        if np.any(shp_vec < 0):
            raise SacRuntimeError("genarray shape must be non-negative")
        shp = tuple(int(x) for x in shp_vec)
        frame_shape = shp
    elif isinstance(op, ModarrayOp):
        base = interp.eval_expr(op.array, env)
        if not isinstance(base, np.ndarray):
            raise SacTypeError("modarray frame must be an array")
        frame_shape = base.shape

    space = _resolve_space(interp, env, wl.generator, frame_shape)
    if frame_shape is not None:
        # The generator may cover a lower-rank prefix (non-scalar cells).
        _check_region(space, frame_shape[: space.rank])

    if interp.options.vectorize and space.is_affine:
        try:
            return _eval_vectorized(interp, env, wl, space, shp)
        except AbstractUnsupported:
            pass
    return _eval_scalar(interp, env, wl, space, shp)
