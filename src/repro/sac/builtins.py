"""Built-in operations of the SAC interpreter.

SAC proper ships only a handful of primitives (``dim``, ``shape``,
selection) and defines everything else in its array library.  Our
interpreter additionally evaluates the arithmetic/relational operators
elementwise on arrays directly — semantically identical to the library's
WITH-loop definitions (which :mod:`repro.sac.stdlib` also provides under
spelled-out names, and tests cross-check) but far cheaper than routing
every ``+`` through a WITH-loop.

Integer division and remainder follow C semantics (truncation toward
zero), matching SAC's C heritage.
"""

from __future__ import annotations

import math

import numpy as np

from .errors import SacRuntimeError, SacTypeError
from .values import (
    AbstractUnsupported,
    IndexView,
    SpaceValue,
    coerce_value,
    value_type,
)

__all__ = [
    "apply_binop",
    "apply_unop",
    "int_div",
    "int_mod",
    "BUILTINS",
    "call_builtin",
    "is_builtin",
    "FOLD_UFUNCS",
]


# ---------------------------------------------------------------------------
# Arithmetic.
# ---------------------------------------------------------------------------

def int_div(a, b):
    """C-style integer division (truncate toward zero)."""
    if np.any(np.asarray(b) == 0):
        raise SacRuntimeError("integer division by zero")
    q = np.floor_divide(a, b)
    r = a - b * q
    adjust = (r != 0) & ((np.asarray(a) < 0) != (np.asarray(b) < 0))
    return q + adjust


def int_mod(a, b):
    """C-style remainder: ``a - b * int_div(a, b)``."""
    return a - b * int_div(a, b)


def _is_intlike(v) -> bool:
    if isinstance(v, bool):
        return False
    if isinstance(v, (int, np.integer)):
        return True
    return isinstance(v, np.ndarray) and v.dtype == np.int64


def _raw(v):
    """Unwrap SpaceValue to its ndarray; pass concrete values through."""
    return v.data if isinstance(v, SpaceValue) else v


def _check_elementwise_shapes(l, r) -> None:
    """SAC elementwise ops need equal shapes or a scalar operand."""
    ls = l.shape if isinstance(l, np.ndarray) else ()
    rs = r.shape if isinstance(r, np.ndarray) else ()
    if ls and rs and ls != rs:
        raise SacTypeError(
            f"elementwise operation on mismatched shapes {ls} and {rs}"
        )


def _rewrap(result, l, r=None):
    """Wrap a raw result back into a SpaceValue if an operand was one."""
    for v in (l, r):
        if isinstance(v, SpaceValue):
            return SpaceValue(np.asarray(result), v.space_ndim)
    return coerce_value(result)


def _binop_spaces_compatible(l, r) -> None:
    if (
        isinstance(l, SpaceValue)
        and isinstance(r, SpaceValue)
        and l.space_dims != r.space_dims
    ):
        raise AbstractUnsupported("mismatched iteration spaces")


def apply_binop(op: str, l, r):
    """Evaluate a binary operator on concrete and/or abstract values."""
    # Affine index fast paths; fall back to materialized form when the
    # operation leaves the affine domain.
    if isinstance(l, IndexView):
        try:
            if op == "+":
                return l.add(r)
            if op == "-":
                return l.sub(r)
            if op == "*":
                return l.mul(r)
            if op == "/":
                return l.floordiv(r)
        except AbstractUnsupported:
            pass
        l = l.materialize()
    if isinstance(r, IndexView):
        try:
            if op == "+":
                return r.add(l)
            if op == "*":
                return r.mul(l)
            if op == "-":
                # l - iv  ==  (-iv) + l, still affine.
                return r.mul(-1).add(l)
        except AbstractUnsupported:
            pass
        r = r.materialize()

    _binop_spaces_compatible(l, r)
    lr, rr = _raw(l), _raw(r)
    if not isinstance(l, SpaceValue) and not isinstance(r, SpaceValue):
        _check_elementwise_shapes(lr, rr)

    if op == "+":
        return _rewrap(lr + rr, l, r)
    if op == "-":
        return _rewrap(lr - rr, l, r)
    if op == "*":
        return _rewrap(lr * rr, l, r)
    if op == "/":
        if _is_intlike_raw(lr) and _is_intlike_raw(rr):
            return _rewrap(int_div(lr, rr), l, r)
        rarr = np.asarray(rr)
        if np.any(rarr == 0.0):
            raise SacRuntimeError("division by zero")
        return _rewrap(lr / rr, l, r)
    if op == "%":
        if _is_intlike_raw(lr) and _is_intlike_raw(rr):
            return _rewrap(int_mod(lr, rr), l, r)
        raise SacTypeError("'%' requires integer operands")
    if op == "==":
        return _rewrap(np.equal(lr, rr) if _any_array(lr, rr) else lr == rr, l, r)
    if op == "!=":
        return _rewrap(np.not_equal(lr, rr) if _any_array(lr, rr) else lr != rr, l, r)
    if op == "<":
        return _rewrap(lr < rr, l, r)
    if op == "<=":
        return _rewrap(lr <= rr, l, r)
    if op == ">":
        return _rewrap(lr > rr, l, r)
    if op == ">=":
        return _rewrap(lr >= rr, l, r)
    if op == "&&":
        return _rewrap(np.logical_and(lr, rr) if _any_array(lr, rr) else (lr and rr), l, r)
    if op == "||":
        return _rewrap(np.logical_or(lr, rr) if _any_array(lr, rr) else (lr or rr), l, r)
    raise SacRuntimeError(f"unknown operator {op!r}")


def _is_intlike_raw(v) -> bool:
    return _is_intlike(v)


def _any_array(*vs) -> bool:
    return any(isinstance(v, np.ndarray) for v in vs)


def apply_unop(op: str, v):
    if isinstance(v, IndexView):
        if op == "-":
            return v.mul(-1)
        v = v.materialize()
    raw = _raw(v)
    if op == "-":
        return _rewrap(-raw, v)
    if op == "!":
        return _rewrap(np.logical_not(raw) if isinstance(raw, np.ndarray) else (not raw), v)
    raise SacRuntimeError(f"unknown unary operator {op!r}")


# ---------------------------------------------------------------------------
# Built-in functions.
# ---------------------------------------------------------------------------

def _bi_dim(a):
    if isinstance(a, SpaceValue):
        return len(a.cell_shape)
    if isinstance(a, IndexView):
        return 1
    if isinstance(a, np.ndarray):
        return a.ndim
    value_type(a)  # raises for non-values
    return 0


def _bi_shape(a):
    if isinstance(a, SpaceValue):
        return np.asarray(a.cell_shape, dtype=np.int64)
    if isinstance(a, IndexView):
        return np.asarray([a.rank], dtype=np.int64)
    if isinstance(a, np.ndarray):
        return np.asarray(a.shape, dtype=np.int64)
    value_type(a)
    return np.empty(0, dtype=np.int64)


def _elementwise(fn):
    def wrapped(*args):
        if any(isinstance(a, IndexView) for a in args):
            args = tuple(
                a.materialize() if isinstance(a, IndexView) else a for a in args
            )
        raws = tuple(_raw(a) for a in args)
        result = fn(*raws)
        for a in args:
            if isinstance(a, SpaceValue):
                return SpaceValue(np.asarray(result), a.space_ndim)
        return coerce_value(result)

    return wrapped


def _bi_toi(x):
    # Truncation toward zero, C cast semantics.
    if isinstance(x, np.ndarray):
        return np.trunc(x).astype(np.int64)
    return int(x)


def _bi_tod(x):
    if isinstance(x, np.ndarray):
        return x.astype(np.float64)
    return float(x)


def _cell_reduce(a: SpaceValue, ufunc) -> SpaceValue:
    axes = tuple(range(a.space_ndim, a.data.ndim))
    return SpaceValue(ufunc.reduce(a.data, axis=axes) if axes else a.data.copy(),
                      a.space_ndim)


def _bi_sum(a):
    if isinstance(a, IndexView):
        a = a.materialize()
    if isinstance(a, SpaceValue):
        return _cell_reduce(a, np.add)
    if isinstance(a, np.ndarray):
        return coerce_value(a.sum())
    return a


def _bi_prod(a):
    if isinstance(a, IndexView):
        a = a.materialize()
    if isinstance(a, SpaceValue):
        return _cell_reduce(a, np.multiply)
    if isinstance(a, np.ndarray):
        return coerce_value(a.prod())
    return a


BUILTINS: dict[str, object] = {
    "dim": _bi_dim,
    "shape": _bi_shape,
    "abs": _elementwise(np.abs),
    "min": _elementwise(np.minimum),
    "max": _elementwise(np.maximum),
    "sqrt": _elementwise(np.sqrt),
    "tod": _elementwise(_bi_tod),
    "toi": _elementwise(_bi_toi),
    "sum": _bi_sum,
    "prod": _bi_prod,
}

#: Fold operations with a vectorized reduction.
FOLD_UFUNCS = {
    "+": np.add,
    "*": np.multiply,
    "min": np.minimum,
    "max": np.maximum,
}


def is_builtin(name: str) -> bool:
    return name in BUILTINS


def call_builtin(name: str, args):
    fn = BUILTINS[name]
    return fn(*args)
