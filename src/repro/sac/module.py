"""Program-level API: load, optimize and run SAC modules.

    from repro.sac import SacProgram

    prog = SacProgram.from_source(source)
    result = prog.call("MGrid", v, 4)

:class:`SacProgram` is a thin facade over
:class:`~repro.sac.driver.session.CompilationSession`, which owns the
staged pipeline (parse → link → typecheck → analyze → optimize →
backend), the instrumented pass manager, and the content-addressed
kernel cache.  Loading the same source with the same options twice
serves the second load from the cache with zero parse/optimize work —
see ``docs/COMPILER.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from .ast_nodes import Program

__all__ = ["SacProgram", "CompileOptions"]


@dataclass(frozen=True)
class CompileOptions:
    """Front-end configuration — the compiler-ablation switches."""

    #: Link the Fig. 10 prelude into the program.
    include_prelude: bool = True
    #: Run the static semantic checks before anything else.
    typecheck: bool = True
    #: Run the full static analyzer (shape/partition/race/lint) and
    #: refuse to build on error-severity findings.
    analyze: bool = False
    #: Run the optimization pipeline (inlining, constant folding,
    #: WITH-loop folding, stencil unrolling/grouping, DCE).
    optimize: bool = True
    #: Vectorize WITH-loop execution (off = scalar reference loops).
    vectorize: bool = True
    #: Specialize hot calls through the codegen backend at run time.
    jit: bool = False
    jit_threshold: int = 3
    #: Fine-grained pass control, forwarded to the pipeline.
    pass_overrides: tuple[tuple[str, bool], ...] = ()


class SacProgram:
    """A loaded (and possibly optimized) SAC module, ready to call.

    Thin facade: compilation happens in a
    :class:`~repro.sac.driver.session.CompilationSession`; this class
    only re-exposes the artifacts consumers historically reached for
    (``program``, ``interp``, ``analysis_report``).
    """

    def __init__(self, program: Program,
                 options: CompileOptions | None = None, *,
                 _session=None):
        from .driver.session import CompilationSession

        if _session is not None:
            self.session = _session
        else:
            self.session = CompilationSession(
                parsed=program, options=options or CompileOptions()
            )
        self.options = self.session.options

    # -- session-owned artifacts --------------------------------------------

    @property
    def program(self) -> Program:
        """The post-pipeline (optimized) program."""
        return self.session.program

    @property
    def analysis_report(self):
        return self.session.analysis_report

    @property
    def interp(self):
        return self.session.interpreter

    @property
    def pass_report(self):
        """Per-pass timings and rewrite counts for this build (empty
        when the build was served from the program cache)."""
        return self.session.pass_report

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_source(cls, source: str, filename: str = "<sac>",
                    options: CompileOptions | None = None) -> "SacProgram":
        from .driver.session import CompilationSession

        session = CompilationSession(source, filename,
                                     options or CompileOptions())
        return cls(None, _session=session)

    @classmethod
    def from_file(cls, path: str | Path,
                  options: CompileOptions | None = None) -> "SacProgram":
        path = Path(path)
        return cls.from_source(path.read_text(), str(path), options)

    # -- execution ----------------------------------------------------------

    def call(self, name: str, *args):
        """Invoke a program function with Python/NumPy arguments."""
        return self.interp.call(name, *args)

    def function_names(self) -> list[str]:
        return sorted(self.interp.functions.names())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SacProgram functions={len(self.program.functions)} "
            f"optimize={self.options.optimize} "
            f"vectorize={self.options.vectorize}>"
        )
