"""Program-level API: load, optimize and run SAC modules.

    from repro.sac import SacProgram

    prog = SacProgram.from_source(source)
    result = prog.call("MGrid", v, 4)

Programs are parsed, linked against the prelude
(:mod:`repro.sac.stdlib`), optionally run through the optimization
pipeline (:mod:`repro.sac.optim`), and executed by the interpreter with
vectorized WITH-loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .ast_nodes import Program
from .interp import FunctionTable, Interpreter, InterpOptions
from .parser import parse_program
from .stdlib import load_prelude

__all__ = ["SacProgram", "CompileOptions"]


@dataclass(frozen=True)
class CompileOptions:
    """Front-end configuration — the compiler-ablation switches."""

    #: Link the Fig. 10 prelude into the program.
    include_prelude: bool = True
    #: Run the static semantic checks before anything else.
    typecheck: bool = True
    #: Run the full static analyzer (shape/partition/race/lint) and
    #: refuse to build on error-severity findings.
    analyze: bool = False
    #: Run the optimization pipeline (inlining, constant folding,
    #: WITH-loop folding, stencil unrolling/grouping, DCE).
    optimize: bool = True
    #: Vectorize WITH-loop execution (off = scalar reference loops).
    vectorize: bool = True
    #: Specialize hot calls through the codegen backend at run time.
    jit: bool = False
    jit_threshold: int = 3
    #: Fine-grained pass control, forwarded to the pipeline.
    pass_overrides: tuple[tuple[str, bool], ...] = ()


class SacProgram:
    """A loaded (and possibly optimized) SAC module, ready to call."""

    def __init__(self, program: Program,
                 options: CompileOptions | None = None):
        self.options = options or CompileOptions()
        pieces = []
        if self.options.include_prelude:
            pieces.extend(load_prelude().functions)
        pieces.extend(program.functions)
        combined = Program(tuple(pieces))
        if self.options.typecheck:
            from .typecheck import check_program

            check_program(combined)
        self.analysis_report = None
        if self.options.analyze:
            from .analysis import analyze_program
            from .errors import SacAnalysisError

            report = analyze_program(combined)
            self.analysis_report = report
            if report.errors:
                listing = "\n".join(f"  {d}" for d in report.errors)
                raise SacAnalysisError(
                    f"static analysis found {len(report.errors)} "
                    f"error(s):\n{listing}",
                    diagnostics=report.errors,
                    pos=report.errors[0].pos,
                )
        if self.options.optimize:
            from .optim.pipeline import PassOptions, optimize_program

            overrides = dict(self.options.pass_overrides)
            combined = optimize_program(combined, PassOptions(**overrides))
        self.program = combined
        table = FunctionTable()
        table.update(combined)
        self.interp = Interpreter(
            table,
            InterpOptions(
                vectorize=self.options.vectorize,
                jit=self.options.jit,
                jit_threshold=self.options.jit_threshold,
            ),
        )

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_source(cls, source: str, filename: str = "<sac>",
                    options: CompileOptions | None = None) -> "SacProgram":
        return cls(parse_program(source, filename), options)

    @classmethod
    def from_file(cls, path: str | Path,
                  options: CompileOptions | None = None) -> "SacProgram":
        path = Path(path)
        return cls.from_source(path.read_text(), str(path), options)

    # -- execution ----------------------------------------------------------

    def call(self, name: str, *args):
        """Invoke a program function with Python/NumPy arguments."""
        return self.interp.call(name, *args)

    def function_names(self) -> list[str]:
        return sorted(self.interp.functions.names())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SacProgram functions={len(self.program.functions)} "
            f"optimize={self.options.optimize} "
            f"vectorize={self.options.vectorize}>"
        )
