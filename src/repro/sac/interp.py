"""Tree-walking evaluator for the SAC subset.

Purely functional semantics: every value is immutable, assignment is
binding, function calls are call-by-value.  WITH-loops are delegated to
:mod:`repro.sac.withloop`, which vectorizes them whenever the body stays
in the affine/abstract domain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .ast_nodes import BinOp, Call, Dot, Expr, FunDef, Program
from .ast_visit import ReturnValue, StatementExecutor
from .builtins import apply_binop, apply_unop, call_builtin, is_builtin
from .errors import (
    SacArityError,
    SacNameError,
    SacRuntimeError,
    SacTypeError,
)
from .sactypes import BaseType, SacType
from .values import (
    AbstractUnsupported,
    IndexView,
    SpaceValue,
    coerce_value,
    value_type,
)
from .withloop import eval_withloop

__all__ = ["Env", "InterpOptions", "Interpreter", "FunctionTable"]


class Env:
    """Lexical environment: a binding dict with an optional parent."""

    __slots__ = ("bindings", "parent")

    def __init__(self, bindings: dict | None = None, parent: "Env | None" = None):
        self.bindings = bindings if bindings is not None else {}
        self.parent = parent

    def lookup(self, name: str):
        env = self
        while env is not None:
            if name in env.bindings:
                return env.bindings[name]
            env = env.parent
        raise SacNameError(f"undefined variable {name!r}")

    def contains(self, name: str) -> bool:
        env = self
        while env is not None:
            if name in env.bindings:
                return True
            env = env.parent
        return False

    def bind(self, name: str, value) -> None:
        self.bindings[name] = value

    def child(self, bindings: dict | None = None) -> "Env":
        return Env(bindings or {}, self)


class FunctionTable:
    """Overload sets keyed by function name."""

    def __init__(self) -> None:
        self._funs: dict[str, list[FunDef]] = {}

    def add(self, fun: FunDef) -> None:
        self._funs.setdefault(fun.name, []).append(fun)

    def update(self, program: Program) -> None:
        for fun in program.functions:
            self.add(fun)

    def overloads(self, name: str) -> list[FunDef]:
        return self._funs.get(name, [])

    def names(self):
        return self._funs.keys()

    def resolve(self, name: str, argtypes: list[SacType]) -> FunDef:
        """Pick the most specific overload accepting the argument types."""
        candidates = [
            f for f in self.overloads(name)
            if f.arity == len(argtypes)
            and all(p.type.accepts(t) for p, t in zip(f.params, argtypes))
        ]
        if not candidates:
            avail = self.overloads(name)
            if not avail:
                raise SacNameError(f"undefined function {name!r}")
            sigs = "; ".join(
                "(" + ", ".join(str(p.type) for p in f.params) + ")" for f in avail
            )
            raise SacArityError(
                f"no overload of {name!r} accepts ("
                + ", ".join(map(str, argtypes))
                + f"); available: {sigs}"
            )
        best = min(
            candidates, key=lambda f: sum(p.type.specificity() for p in f.params)
        )
        score = sum(p.type.specificity() for p in best.params)
        ties = [
            f for f in candidates
            if sum(p.type.specificity() for p in f.params) == score and f is not best
        ]
        if ties:
            raise SacTypeError(f"ambiguous overloads for {name!r}")
        return best


@dataclass
class InterpOptions:
    """Evaluation knobs (the compiler-ablation switches)."""

    #: Attempt vectorized WITH-loop execution (off = pure scalar loops).
    vectorize: bool = True
    #: Guard against runaway recursion in user programs.
    max_call_depth: int = 200
    #: Specialize hot functions through the codegen backend (sac2c-style
    #: shape specialization at run time).
    jit: bool = False
    #: Calls with the same (function, argument-signature) before the JIT
    #: compiles that specialization.
    jit_threshold: int = 3


def _dispatch_type(v) -> SacType:
    """Type used for overload resolution, for concrete *and* abstract
    values (abstract values dispatch on their per-point cell type)."""
    if isinstance(v, IndexView):
        return SacType.aks(BaseType.INT, (v.rank,))
    if isinstance(v, SpaceValue):
        base = {
            np.dtype(np.float64): BaseType.DOUBLE,
            np.dtype(np.int64): BaseType.INT,
            np.dtype(np.bool_): BaseType.BOOL,
        }.get(v.data.dtype)
        if base is None:
            raise SacTypeError(f"unsupported dtype {v.data.dtype}")
        if v.cell_shape == ():
            return SacType.scalar(base)
        return SacType.aks(base, v.cell_shape)
    return value_type(v)


class Interpreter(StatementExecutor):
    """Evaluator over a :class:`FunctionTable`.

    When ``kernel_cache`` (a :class:`repro.sac.driver.cache.KernelCache`)
    and ``program_digest`` are supplied, the JIT requests compiled
    specializations from that shared content-addressed cache instead of
    tracing privately — a kernel traced by any interpreter, thread, or
    earlier process over the same program is reused here.
    """

    def __init__(self, functions: FunctionTable,
                 options: InterpOptions | None = None, *,
                 kernel_cache=None, program_digest: str | None = None):
        self.functions = functions
        self.options = options or InterpOptions()
        self.kernel_cache = kernel_cache
        self.program_digest = program_digest
        self._depth = 0
        # JIT state: per (function, signature) call counts, loaded
        # specializations, and signatures codegen refused.
        self._jit_counts: dict = {}
        self._jit_cache: dict = {}
        self._jit_blocked: set = set()
        # Each SAC call consumes several Python frames; make sure our own
        # depth guard fires before CPython's recursion limit does.
        import sys

        needed = 25 * self.options.max_call_depth
        if sys.getrecursionlimit() < needed:
            sys.setrecursionlimit(needed)

    # -- public API ----------------------------------------------------------

    def call(self, name: str, *args):
        """Call a SAC function with Python/NumPy values; returns a value."""
        return self.apply_named(name, [self._ingest(a) for a in args])

    @staticmethod
    def _ingest(v):
        if isinstance(v, np.ndarray):
            if v.dtype == np.float64 or v.dtype == np.int64 or v.dtype == np.bool_:
                return v
            if np.issubdtype(v.dtype, np.integer):
                return v.astype(np.int64)
            if np.issubdtype(v.dtype, np.floating):
                return v.astype(np.float64)
            raise SacTypeError(f"unsupported argument dtype {v.dtype}")
        return coerce_value(v)

    # -- function application --------------------------------------------------

    def apply_named(self, name: str, args: list):
        """Apply a named function: operators, then user overloads (which
        shadow builtins when they match), then builtins."""
        if name in ("+", "-", "*", "/", "%"):
            if len(args) != 2:
                raise SacArityError(f"operator {name!r} needs two arguments")
            return apply_binop(name, args[0], args[1])
        if self.functions.overloads(name):
            argtypes = [_dispatch_type(a) for a in args]
            try:
                fun = self.functions.resolve(name, argtypes)
            except (SacArityError, SacNameError):
                if is_builtin(name):
                    return call_builtin(name, args)
                raise
            return self.apply_fundef(fun, args)
        if is_builtin(name):
            return call_builtin(name, args)
        raise SacNameError(f"undefined function {name!r}")

    # -- JIT ------------------------------------------------------------------

    @staticmethod
    def _jit_signature(fun: FunDef, args: list):
        """Hashable specialization key, or None when not specializable."""
        parts: list = [id(fun)]
        for a in args:
            if isinstance(a, (SpaceValue, IndexView)):
                return None  # abstract context: never JIT
            if isinstance(a, np.ndarray):
                if a.dtype == np.float64:
                    parts.append(("arr", a.shape))
                else:
                    # Non-float arrays get baked: key on the exact value.
                    parts.append(("const-arr", a.shape, a.tobytes()))
            else:
                parts.append(("const", type(a).__name__, a))
        return tuple(parts)

    def _kernel_cache_key(self, fun: FunDef, args: list):
        """Content-addressed key into the shared kernel cache, or None
        when this interpreter has no shared-cache identity."""
        if self.kernel_cache is None or self.program_digest is None:
            return None
        from .driver.cache import kernel_key, shape_signature

        overload = f"{fun.name}(" + ",".join(
            str(p.type) for p in fun.params
        ) + ")"
        return kernel_key(self.program_digest, overload, shape_signature(args))

    def _jit_lookup(self, fun: FunDef, args: list):
        sig = self._jit_signature(fun, args)
        if sig is None or sig in self._jit_blocked:
            return None
        compiled = self._jit_cache.get(sig)
        if compiled is not None:
            return compiled
        count = self._jit_counts.get(sig, 0) + 1
        self._jit_counts[sig] = count
        if count < self.options.jit_threshold:
            return None
        from .codegen import CodegenUnsupported, load_artifact, trace_fundef
        from .errors import SacError

        key = self._kernel_cache_key(fun, args)
        compiled = None
        if key is not None:
            compiled = self.kernel_cache.get_kernel(key)
        if compiled is None:
            try:
                artifact = trace_fundef(self.functions, fun, args)
            except (CodegenUnsupported, SacError):
                self._jit_blocked.add(sig)
                return None
            compiled = load_artifact(artifact)
            if key is not None:
                self.kernel_cache.put_kernel(key, artifact)
        self._jit_cache[sig] = compiled
        return compiled

    @property
    def jit_compiled_count(self) -> int:
        """How many specializations the JIT has compiled (introspection)."""
        return len(self._jit_cache)

    def apply_fundef(self, fun: FunDef, args: list):
        if self.options.jit:
            compiled = self._jit_lookup(fun, args)
            if compiled is not None:
                return coerce_value(compiled(*args))
        if self._depth >= self.options.max_call_depth:
            raise SacRuntimeError(
                f"call depth exceeded ({self.options.max_call_depth}) in "
                f"{fun.name!r}"
            )
        env = Env({p.name: a for p, a in zip(fun.params, args)})
        self._depth += 1
        try:
            self.exec_block(fun.body, env)
        except ReturnValue as ret:
            return ret.value
        finally:
            self._depth -= 1
        if fun.return_type.base is BaseType.VOID:
            return None
        raise SacRuntimeError(f"function {fun.name!r} did not return a value")

    # -- statements ------------------------------------------------------------
    # Control flow (Assign/Return/If/For/While/DoWhile/ExprStmt/Block)
    # comes from the shared StatementExecutor; the hooks below fill in
    # the interpreter-specific pieces.

    def bind(self, env: Env, name: str, value) -> None:
        env.bind(name, value)

    def exec_cond(self, expr: Expr, env: Env, what: str) -> bool:
        v = self.eval_expr(expr, env)
        if isinstance(v, (SpaceValue, IndexView)):
            raise AbstractUnsupported("data-dependent control flow")
        v = coerce_value(v)
        if isinstance(v, bool):
            return v
        raise SacTypeError(
            f"condition must be a boolean, got {value_type(v)}"
            + (f" at {expr.pos}" if getattr(expr, "pos", None) else "")
        )

    # -- expressions -------------------------------------------------------------
    # Dispatch to ``eval_<ClassName>`` comes from the shared
    # ExprDispatcher base (per-class memoized table).

    def eval_IntLit(self, expr, env: Env):
        return expr.value

    def eval_DoubleLit(self, expr, env: Env):
        return expr.value

    def eval_BoolLit(self, expr, env: Env):
        return expr.value

    def eval_Var(self, expr, env: Env):
        return env.lookup(expr.name)

    def eval_Dot(self, expr: Dot, env: Env):
        raise SacRuntimeError("'.' is only legal inside a generator")

    def eval_VectorLit(self, expr, env: Env):
        if not expr.elements:
            return np.empty(0, dtype=np.int64)
        values = [coerce_value(self.eval_expr(e, env)) for e in expr.elements]
        if any(isinstance(v, (SpaceValue, IndexView)) for v in values):
            return self._eval_vector_abstract(values)
        try:
            arr = np.asarray(values)
        except ValueError as exc:
            raise SacTypeError(f"ragged array literal: {exc}") from None
        if arr.dtype == object:
            raise SacTypeError("ragged array literal")
        if np.issubdtype(arr.dtype, np.integer):
            arr = arr.astype(np.int64)
        elif np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float64)
        return arr

    @staticmethod
    def _eval_vector_abstract(values):
        mats = []
        space_ndim = None
        for v in values:
            if isinstance(v, IndexView):
                v = v.materialize()
            if isinstance(v, SpaceValue):
                if space_ndim is None:
                    space_ndim = v.space_ndim
                elif v.space_ndim != space_ndim:
                    raise AbstractUnsupported("vector of mixed spaces")
            mats.append(v)
        assert space_ndim is not None
        dims = next(v.space_dims for v in mats if isinstance(v, SpaceValue))
        parts = []
        for v in mats:
            if isinstance(v, SpaceValue):
                if v.cell_shape != ():
                    raise AbstractUnsupported("nested abstract vector literal")
                parts.append(v.data)
            else:
                parts.append(np.broadcast_to(np.asarray(v), dims))
        return SpaceValue(np.stack(parts, axis=-1), space_ndim)

    def eval_BinOp(self, expr: BinOp, env: Env):
        # Short-circuit on concrete booleans only.
        if expr.op in ("&&", "||"):
            left = self.eval_expr(expr.left, env)
            if not isinstance(left, (SpaceValue, IndexView, np.ndarray)):
                left = coerce_value(left)
                if isinstance(left, bool):
                    if expr.op == "&&" and not left:
                        return False
                    if expr.op == "||" and left:
                        return True
                    return self._expect_boolish(expr.right, env)
            return apply_binop(expr.op, left, self.eval_expr(expr.right, env))
        return apply_binop(
            expr.op, self.eval_expr(expr.left, env), self.eval_expr(expr.right, env)
        )

    def _expect_boolish(self, expr: Expr, env: Env):
        return self.eval_expr(expr, env)

    def eval_UnOp(self, expr, env: Env):
        return apply_unop(expr.op, self.eval_expr(expr.operand, env))

    def eval_Call(self, expr: Call, env: Env):
        args = [self.eval_expr(a, env) for a in expr.args]
        try:
            return self.apply_named(expr.name, args)
        except (SacNameError, SacArityError) as exc:
            exc.pos = exc.pos or expr.pos
            raise

    def eval_Select(self, expr, env: Env):
        array = self.eval_expr(expr.array, env)
        index = self.eval_expr(expr.index, env)
        return self.select(array, index)

    def eval_WithLoop(self, expr, env: Env):
        return eval_withloop(self, env, expr)

    # -- selection ---------------------------------------------------------------

    def select(self, array, index):
        """SAC selection ``array[index]`` for concrete and abstract operands."""
        index = coerce_value(index)
        # iv[[j]] — component of the index variable.
        if isinstance(array, IndexView):
            return self._select_from_indexview(array, index)
        if isinstance(array, SpaceValue):
            return self._select_from_spacevalue(array, index)
        if not isinstance(array, np.ndarray):
            raise SacTypeError(
                f"cannot select from a scalar ({value_type(array)})"
            )
        if isinstance(index, IndexView):
            return self._select_affine(array, index)
        if isinstance(index, SpaceValue):
            return self._select_gather(array, index)
        return self._select_concrete(array, index)

    @staticmethod
    def _index_tuple(index) -> tuple[int, ...]:
        if isinstance(index, (int, np.integer)) and not isinstance(index, bool):
            return (int(index),)
        if isinstance(index, np.ndarray) and index.ndim == 1 and \
                index.dtype == np.int64:
            return tuple(int(x) for x in index)
        raise SacTypeError("selection index must be an int or an int vector")

    def _select_concrete(self, array: np.ndarray, index):
        idx = self._index_tuple(index)
        if len(idx) > array.ndim:
            raise SacTypeError(
                f"index of length {len(idx)} into rank-{array.ndim} array"
            )
        for j, (i, ext) in enumerate(zip(idx, array.shape)):
            if i < 0 or i >= ext:
                raise SacRuntimeError(
                    f"index {i} out of bounds for axis {j} with extent {ext}"
                )
        result = array[idx]
        return coerce_value(result) if np.isscalar(result) or result.ndim == 0 \
            else result.copy()

    def _select_affine(self, array: np.ndarray, iv: IndexView):
        n = iv.rank
        if n > array.ndim:
            raise SacTypeError(
                f"index of length {n} into rank-{array.ndim} array"
            )
        sel = tuple(ax.as_slice(ext) for ax, ext in zip(iv.axes, array.shape))
        data = array[sel + (slice(None),) * (array.ndim - n)]
        return SpaceValue(data, n)

    def _select_gather(self, array: np.ndarray, index: SpaceValue):
        if index.cell_shape == () :
            comps = [index.data]
        elif len(index.cell_shape) == 1:
            comps = [index.data[..., j] for j in range(index.cell_shape[0])]
        else:
            raise AbstractUnsupported("index cell must be scalar or vector")
        if len(comps) > array.ndim:
            raise SacTypeError(
                f"index of length {len(comps)} into rank-{array.ndim} array"
            )
        for j, comp in enumerate(comps):
            if comp.min() < 0 or comp.max() >= array.shape[j]:
                raise SacRuntimeError(
                    f"index out of bounds for axis {j} in gather selection"
                )
        data = array[tuple(comps)]
        return SpaceValue(data, index.space_ndim)

    def _select_from_indexview(self, iv: IndexView, index):
        idx = self._index_tuple(index)
        if len(idx) != 1:
            raise SacTypeError("index-variable selection takes one component")
        j = idx[0]
        if j < 0 or j >= iv.rank:
            raise SacRuntimeError(
                f"component {j} out of range for index vector of length {iv.rank}"
            )
        ax = iv.axes[j]
        dims = iv.space_dims
        shape = [1] * len(dims)
        shape[j] = dims[j]
        data = np.broadcast_to(ax.values().reshape(shape), dims)
        return SpaceValue(data, len(dims))

    def _select_from_spacevalue(self, sv: SpaceValue, index):
        if isinstance(index, (SpaceValue, IndexView)):
            raise AbstractUnsupported("abstract index into abstract array")
        idx = self._index_tuple(index)
        if len(idx) > len(sv.cell_shape):
            raise SacTypeError(
                f"index of length {len(idx)} into rank-{len(sv.cell_shape)} cells"
            )
        for j, (i, ext) in enumerate(zip(idx, sv.cell_shape)):
            if i < 0 or i >= ext:
                raise SacRuntimeError(
                    f"index {i} out of bounds for cell axis {j} (extent {ext})"
                )
        sel = (slice(None),) * sv.space_ndim + idx
        return SpaceValue(sv.data[sel], sv.space_ndim)
