"""A working mini-SAC: front end, optimizer, vectorizing interpreter.

Public entry point: :class:`SacProgram`.

    from repro.sac import SacProgram, CompileOptions
    prog = SacProgram.from_source("int f(int x) { return x + 1; }")
    prog.call("f", 41)   # -> 42
"""

from .diagnostics import (
    CODE_CATALOGUE,
    Diagnostic,
    Severity,
    render_json,
    render_sarif,
    render_text,
)
from .errors import (
    SacAnalysisError,
    SacArityError,
    SacError,
    SacNameError,
    SacOptionError,
    SacRuntimeError,
    SacSyntaxError,
    SacTypeError,
)
from .codegen import (
    CodegenUnsupported,
    CompiledFunction,
    KernelArtifact,
    compile_function,
)
from .driver import (
    CompilationSession,
    Fixpoint,
    KernelCache,
    PassManager,
    PassReport,
    StageRecord,
    default_cache,
)
from .interp import FunctionTable, Interpreter, InterpOptions
from .lexer import tokenize
from .module import CompileOptions, SacProgram
from .optim import PassOptions, optimize_program
from .parser import parse_expression, parse_program
from .pprint import pprint_expr, pprint_program
from .typecheck import check_program, collect_diagnostics
from .sactypes import BOOL, DOUBLE, INT, VOID, BaseType, SacType, ShapeKind
from .stdlib import PRELUDE_SOURCE, load_prelude

__all__ = [
    "SacProgram",
    "CompileOptions",
    "CompilationSession",
    "StageRecord",
    "PassManager",
    "PassReport",
    "Fixpoint",
    "KernelCache",
    "KernelArtifact",
    "default_cache",
    "SacOptionError",
    "PassOptions",
    "optimize_program",
    "FunctionTable",
    "Interpreter",
    "InterpOptions",
    "tokenize",
    "parse_program",
    "parse_expression",
    "pprint_expr",
    "pprint_program",
    "check_program",
    "collect_diagnostics",
    "compile_function",
    "CompiledFunction",
    "CodegenUnsupported",
    "SacError",
    "SacSyntaxError",
    "SacTypeError",
    "SacNameError",
    "SacArityError",
    "SacRuntimeError",
    "SacAnalysisError",
    "Diagnostic",
    "Severity",
    "CODE_CATALOGUE",
    "render_text",
    "render_json",
    "render_sarif",
    "SacType",
    "ShapeKind",
    "BaseType",
    "INT",
    "DOUBLE",
    "BOOL",
    "VOID",
    "PRELUDE_SOURCE",
    "load_prelude",
]
