"""Abstract syntax tree of the SAC subset.

All nodes are frozen dataclasses carrying an optional source position.
The tree doubles as the optimizer's IR: passes are AST-to-AST.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union

from .errors import SourcePos
from .sactypes import SacType

__all__ = [
    "Node",
    "Expr",
    "Stmt",
    "IntLit",
    "DoubleLit",
    "BoolLit",
    "VectorLit",
    "Var",
    "Dot",
    "BinOp",
    "UnOp",
    "Call",
    "Select",
    "Generator",
    "GenarrayOp",
    "ModarrayOp",
    "FoldOp",
    "ReuseHint",
    "WithLoop",
    "Assign",
    "If",
    "For",
    "While",
    "DoWhile",
    "Return",
    "ExprStmt",
    "Block",
    "Param",
    "FunDef",
    "Program",
]


@dataclass(frozen=True)
class Node:
    pass


@dataclass(frozen=True)
class Expr(Node):
    pass


@dataclass(frozen=True)
class Stmt(Node):
    pass


# --------------------------------------------------------------------------
# Expressions.
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class IntLit(Expr):
    value: int
    pos: Optional[SourcePos] = None


@dataclass(frozen=True)
class DoubleLit(Expr):
    value: float
    pos: Optional[SourcePos] = None


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool
    pos: Optional[SourcePos] = None


@dataclass(frozen=True)
class VectorLit(Expr):
    """Array literal ``[e1, e2, ...]`` (possibly nested)."""

    elements: tuple[Expr, ...]
    pos: Optional[SourcePos] = None


@dataclass(frozen=True)
class Var(Expr):
    name: str
    pos: Optional[SourcePos] = None


@dataclass(frozen=True)
class Dot(Expr):
    """The ``.`` bound inside a WITH-loop generator."""

    pos: Optional[SourcePos] = None


@dataclass(frozen=True)
class BinOp(Expr):
    op: str  # one of + - * / % == != < <= > >= && ||
    left: Expr
    right: Expr
    pos: Optional[SourcePos] = None


@dataclass(frozen=True)
class UnOp(Expr):
    op: str  # one of - !
    operand: Expr
    pos: Optional[SourcePos] = None


@dataclass(frozen=True)
class Call(Expr):
    name: str
    args: tuple[Expr, ...]
    pos: Optional[SourcePos] = None


@dataclass(frozen=True)
class Select(Expr):
    """Array selection ``array[index]`` (index: scalar or int vector)."""

    array: Expr
    index: Expr
    pos: Optional[SourcePos] = None


@dataclass(frozen=True)
class Generator(Expr):
    """``( lower relop ident relop upper [step s [width w]] )``."""

    lower: Expr            # expression or Dot
    lower_inclusive: bool  # `<=` vs `<`
    var: str
    upper: Expr            # expression or Dot
    upper_inclusive: bool
    step: Optional[Expr] = None
    width: Optional[Expr] = None
    pos: Optional[SourcePos] = None


@dataclass(frozen=True)
class GenarrayOp(Node):
    shape: Expr
    body: Expr
    pos: Optional[SourcePos] = None


@dataclass(frozen=True)
class ModarrayOp(Node):
    array: Expr
    body: Expr
    pos: Optional[SourcePos] = None


@dataclass(frozen=True)
class FoldOp(Node):
    fun: str
    neutral: Expr
    body: Expr
    pos: Optional[SourcePos] = None


@dataclass(frozen=True)
class ReuseHint(Node):
    """Buffer-reuse annotation attached to a WITH-loop by the ``ipup``
    pass, backed by a :class:`~repro.sac.analysis.reuse.ReuseCertificate`.

    ``buffer_reuse``: the result may steal the (dead, unaliased) buffer
    of the frame operand instead of copying it.  ``destructive``: the
    update is additionally legal cell-by-cell in iteration order (no
    offset reads of the frame).  ``frame`` names the certified operand,
    so consumers can cross-check the annotation against the loop they
    find it on.
    """

    buffer_reuse: bool = False
    destructive: bool = False
    frame: Optional[str] = None


@dataclass(frozen=True)
class WithLoop(Expr):
    generator: Generator
    operation: Union[GenarrayOp, ModarrayOp, FoldOp]
    pos: Optional[SourcePos] = None
    #: Reuse certification attached by :mod:`repro.sac.optim.ipup`;
    #: absent in freshly parsed programs.
    hint: Optional[ReuseHint] = None


# --------------------------------------------------------------------------
# Statements.
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Assign(Stmt):
    target: str
    value: Expr
    pos: Optional[SourcePos] = None


@dataclass(frozen=True)
class Block(Stmt):
    statements: tuple[Stmt, ...]
    pos: Optional[SourcePos] = None


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then: Block
    orelse: Optional[Block] = None
    pos: Optional[SourcePos] = None


@dataclass(frozen=True)
class For(Stmt):
    """C-style ``for (init; cond; update)`` where init/update are
    assignments."""

    init: Assign
    cond: Expr
    update: Assign
    body: Block
    pos: Optional[SourcePos] = None


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr
    body: Block
    pos: Optional[SourcePos] = None


@dataclass(frozen=True)
class DoWhile(Stmt):
    """C-style ``do { ... } while (cond);`` — body runs at least once."""

    body: Block
    cond: Expr
    pos: Optional[SourcePos] = None


@dataclass(frozen=True)
class Return(Stmt):
    value: Expr
    pos: Optional[SourcePos] = None


@dataclass(frozen=True)
class ExprStmt(Stmt):
    expr: Expr
    pos: Optional[SourcePos] = None


# --------------------------------------------------------------------------
# Definitions.
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Param(Node):
    type: SacType
    name: str
    pos: Optional[SourcePos] = None


@dataclass(frozen=True)
class FunDef(Node):
    name: str
    params: tuple[Param, ...]
    return_type: SacType
    body: Block
    inline: bool = False
    pos: Optional[SourcePos] = None

    @property
    def arity(self) -> int:
        return len(self.params)


@dataclass(frozen=True)
class Program(Node):
    functions: tuple[FunDef, ...]
    pos: Optional[SourcePos] = None

    def with_functions(self, functions) -> "Program":
        return replace(self, functions=tuple(functions))
