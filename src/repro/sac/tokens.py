"""Token definitions for the SAC lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from .errors import SourcePos

__all__ = ["TokenKind", "Token", "KEYWORDS"]


class TokenKind(Enum):
    # Literals and identifiers.
    INT = auto()
    DOUBLE = auto()
    IDENT = auto()

    # Keywords.
    KW_IF = auto()
    KW_ELSE = auto()
    KW_FOR = auto()
    KW_WHILE = auto()
    KW_DO = auto()
    KW_RETURN = auto()
    KW_WITH = auto()
    KW_GENARRAY = auto()
    KW_MODARRAY = auto()
    KW_FOLD = auto()
    KW_STEP = auto()
    KW_WIDTH = auto()
    KW_INLINE = auto()
    KW_TRUE = auto()
    KW_FALSE = auto()
    KW_INT = auto()
    KW_DOUBLE = auto()
    KW_BOOL = auto()
    KW_VOID = auto()

    # Punctuation.
    LPAREN = auto()
    RPAREN = auto()
    LBRACE = auto()
    RBRACE = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    COMMA = auto()
    SEMI = auto()
    DOT = auto()

    # Operators.
    PLUS = auto()
    MINUS = auto()
    STAR = auto()
    SLASH = auto()
    PERCENT = auto()
    ASSIGN = auto()
    PLUS_ASSIGN = auto()
    MINUS_ASSIGN = auto()
    STAR_ASSIGN = auto()
    SLASH_ASSIGN = auto()
    EQ = auto()
    NE = auto()
    LT = auto()
    LE = auto()
    GT = auto()
    GE = auto()
    AND = auto()
    OR = auto()
    NOT = auto()

    EOF = auto()


KEYWORDS: dict[str, TokenKind] = {
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "for": TokenKind.KW_FOR,
    "while": TokenKind.KW_WHILE,
    "do": TokenKind.KW_DO,
    "return": TokenKind.KW_RETURN,
    "with": TokenKind.KW_WITH,
    "genarray": TokenKind.KW_GENARRAY,
    "modarray": TokenKind.KW_MODARRAY,
    "fold": TokenKind.KW_FOLD,
    "step": TokenKind.KW_STEP,
    "width": TokenKind.KW_WIDTH,
    "inline": TokenKind.KW_INLINE,
    "true": TokenKind.KW_TRUE,
    "false": TokenKind.KW_FALSE,
    "int": TokenKind.KW_INT,
    "double": TokenKind.KW_DOUBLE,
    "bool": TokenKind.KW_BOOL,
    "void": TokenKind.KW_VOID,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: TokenKind
    text: str
    pos: SourcePos

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}, {self.pos})"
