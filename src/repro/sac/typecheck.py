"""Static semantic checks for SAC programs.

A lightweight front-end pass (the dynamic interpreter re-checks
everything at run time; this catches mistakes before any evaluation):

* references to undefined variables (flow-sensitive through blocks,
  branches and loops; a variable assigned in only one branch of an
  ``if`` counts as *maybe*-defined afterwards and is accepted, matching
  the interpreter's late binding),
* calls to unknown functions, and calls for which no overload has a
  compatible *arity*,
* duplicate parameter names and duplicate identical signatures,
* functions whose body can fall off the end without ``return``
  (conservative: every path must end in a return for non-void),
* ``.`` bounds used outside a WITH-loop generator,
* fold operations naming unknown functions.

Findings are emitted as coded :class:`~repro.sac.diagnostics.Diagnostic`
objects (family ``SAC0xx``; see ``docs/ANALYSIS.md``), collected rather
than raised one at a time so a whole module's problems surface together;
:func:`check_program` raises a :class:`~repro.sac.errors.SacTypeError`
carrying the full list.
"""

from __future__ import annotations

from .ast_nodes import (
    Assign,
    DoWhile,
    BinOp,
    Block,
    Call,
    Dot,
    Expr,
    ExprStmt,
    FoldOp,
    For,
    FunDef,
    GenarrayOp,
    If,
    ModarrayOp,
    Program,
    Return,
    Select,
    Stmt,
    UnOp,
    Var,
    VectorLit,
    While,
    WithLoop,
)
from .builtins import is_builtin
from .diagnostics import Diagnostic
from .errors import SacTypeError, SourcePos

from .sactypes import BaseType

__all__ = ["Diagnostic", "check_program", "collect_diagnostics"]

_OPERATOR_FOLDS = {"+", "*"}


class _Checker:
    def __init__(self, program: Program):
        self.diags: list[Diagnostic] = []
        self.arities: dict[str, set[int]] = {}
        self._fun: str | None = None
        for f in program.functions:
            self.arities.setdefault(f.name, set()).add(f.arity)
        self._check_duplicate_signatures(program)

    # -- module level -------------------------------------------------------

    def _check_duplicate_signatures(self, program: Program) -> None:
        seen: dict[tuple, FunDef] = {}
        for f in program.functions:
            key = (f.name, tuple(str(p.type) for p in f.params))
            if key in seen:
                self.error(
                    "SAC006",
                    f"duplicate definition of {f.name}"
                    f"({', '.join(str(p.type) for p in f.params)})",
                    f.pos,
                )
            seen[key] = f

    def error(self, code: str, message: str,
              pos: SourcePos | None) -> None:
        self.diags.append(Diagnostic.make(code, message, pos, self._fun))

    # -- functions ----------------------------------------------------------

    def check_function(self, fun: FunDef) -> None:
        self._fun = fun.name
        names = [p.name for p in fun.params]
        for name in set(names):
            if names.count(name) > 1:
                self.error(
                    "SAC005",
                    f"duplicate parameter {name!r} in {fun.name!r}", fun.pos
                )
        defined = set(names)
        self.check_block(fun.body, defined)
        if fun.return_type.base is not BaseType.VOID and \
                not self._always_returns(fun.body):
            self.error(
                "SAC007",
                f"function {fun.name!r} may finish without returning a value",
                fun.pos,
            )
        self._fun = None

    def _always_returns(self, block: Block) -> bool:
        for stmt in block.statements:
            if isinstance(stmt, Return):
                return True
            if isinstance(stmt, If) and stmt.orelse is not None:
                if self._always_returns(stmt.then) and \
                        self._always_returns(stmt.orelse):
                    return True
        return False

    # -- statements ----------------------------------------------------------

    def check_block(self, block: Block, defined: set[str]) -> None:
        for stmt in block.statements:
            self.check_stmt(stmt, defined)

    def check_stmt(self, stmt: Stmt, defined: set[str]) -> None:
        if isinstance(stmt, Assign):
            self.check_expr(stmt.value, defined)
            defined.add(stmt.target)
        elif isinstance(stmt, Return):
            self.check_expr(stmt.value, defined)
        elif isinstance(stmt, ExprStmt):
            self.check_expr(stmt.expr, defined)
        elif isinstance(stmt, Block):
            self.check_block(stmt, defined)
        elif isinstance(stmt, If):
            self.check_expr(stmt.cond, defined)
            then_defs = set(defined)
            self.check_block(stmt.then, then_defs)
            else_defs = set(defined)
            if stmt.orelse is not None:
                self.check_block(stmt.orelse, else_defs)
            # Names assigned on *any* path are visible afterwards (the
            # interpreter binds late; using a maybe-unassigned name is a
            # runtime error on the path that skipped it).
            defined |= then_defs | else_defs
        elif isinstance(stmt, For):
            self.check_stmt(stmt.init, defined)
            self.check_expr(stmt.cond, defined)
            body_defs = set(defined)
            self.check_block(stmt.body, body_defs)
            self.check_stmt(stmt.update, body_defs)
            defined |= body_defs
        elif isinstance(stmt, While):
            self.check_expr(stmt.cond, defined)
            body_defs = set(defined)
            self.check_block(stmt.body, body_defs)
            defined |= body_defs
        elif isinstance(stmt, DoWhile):
            # The body runs at least once: its definitions are definite.
            self.check_block(stmt.body, defined)
            self.check_expr(stmt.cond, defined)
        else:  # pragma: no cover - parser produces no other statements
            self.error("SAC001", f"unknown statement {type(stmt).__name__}",
                       getattr(stmt, "pos", None))

    # -- expressions -----------------------------------------------------------

    def check_expr(self, expr: Expr, defined: set[str]) -> None:
        if isinstance(expr, Var):
            if expr.name not in defined:
                self.error("SAC002",
                           f"undefined variable {expr.name!r}", expr.pos)
        elif isinstance(expr, Dot):
            self.error("SAC008",
                       "'.' is only legal as a generator bound", expr.pos)
        elif isinstance(expr, VectorLit):
            for e in expr.elements:
                self.check_expr(e, defined)
        elif isinstance(expr, (BinOp,)):
            self.check_expr(expr.left, defined)
            self.check_expr(expr.right, defined)
        elif isinstance(expr, UnOp):
            self.check_expr(expr.operand, defined)
        elif isinstance(expr, Select):
            self.check_expr(expr.array, defined)
            self.check_expr(expr.index, defined)
        elif isinstance(expr, Call):
            self.check_call(expr, defined)
        elif isinstance(expr, WithLoop):
            self.check_withloop(expr, defined)
        # literals: nothing to do

    def check_call(self, call: Call, defined: set[str]) -> None:
        for a in call.args:
            self.check_expr(a, defined)
        arities = self.arities.get(call.name)
        if arities is None:
            if not is_builtin(call.name):
                self.error("SAC003",
                           f"call to undefined function {call.name!r}",
                           call.pos)
            return
        if len(call.args) not in arities and not is_builtin(call.name):
            self.error(
                "SAC004",
                f"no overload of {call.name!r} takes {len(call.args)} "
                f"argument(s); defined arities: {sorted(arities)}",
                call.pos,
            )

    def check_withloop(self, wl: WithLoop, defined: set[str]) -> None:
        gen = wl.generator
        frame = isinstance(wl.operation, (GenarrayOp, ModarrayOp))
        for bound in (gen.lower, gen.upper):
            if isinstance(bound, Dot):
                if not frame:
                    self.error(
                        "SAC008",
                        "'.' bound requires a genarray/modarray frame",
                        bound.pos or wl.pos,
                    )
            else:
                self.check_expr(bound, defined)
        for extra in (gen.step, gen.width):
            if extra is not None:
                self.check_expr(extra, defined)
        inner = set(defined)
        inner.add(gen.var)
        op = wl.operation
        if isinstance(op, GenarrayOp):
            self.check_expr(op.shape, defined)
            self.check_expr(op.body, inner)
        elif isinstance(op, ModarrayOp):
            self.check_expr(op.array, defined)
            self.check_expr(op.body, inner)
        elif isinstance(op, FoldOp):
            self.check_expr(op.neutral, defined)
            self.check_expr(op.body, inner)
            if (
                op.fun not in _OPERATOR_FOLDS
                and op.fun not in self.arities
                and not is_builtin(op.fun)
            ):
                self.error("SAC009",
                           f"fold names undefined function {op.fun!r}",
                           op.pos or wl.pos)


def collect_diagnostics(program: Program) -> list[Diagnostic]:
    """Run all checks; return the (possibly empty) diagnostic list."""
    checker = _Checker(program)
    for fun in program.functions:
        checker.check_function(fun)
    return checker.diags


def check_program(program: Program) -> None:
    """Raise :class:`SacTypeError` listing every static error."""
    diags = collect_diagnostics(program)
    if diags:
        listing = "\n".join(f"  {d}" for d in diags)
        err = SacTypeError(
            f"{len(diags)} static error(s):\n{listing}", diags[0].pos
        )
        err.diagnostics = diags  # type: ignore[attr-defined]
        raise err
