"""SAC pretty-printer: AST back to source text.

Used for optimizer-output inspection (``sac2c``'s ``-bopt`` moral
equivalent), error messages, and round-trip testing of the parser
(``parse(pprint(parse(src)))`` is structurally identical to
``parse(src)``).
"""

from __future__ import annotations

from .ast_nodes import (
    Assign,
    DoWhile,
    BinOp,
    Block,
    BoolLit,
    Call,
    Dot,
    DoubleLit,
    Expr,
    ExprStmt,
    FoldOp,
    For,
    FunDef,
    GenarrayOp,
    Generator,
    If,
    IntLit,
    ModarrayOp,
    Program,
    Return,
    Select,
    Stmt,
    UnOp,
    Var,
    VectorLit,
    While,
    WithLoop,
)

__all__ = ["pprint_program", "pprint_fundef", "pprint_stmt", "pprint_expr"]

# Binding strength; higher binds tighter.  Mirrors the parser's levels.
_PREC = {
    "||": 1,
    "&&": 2,
    "==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
    "+": 4, "-": 4,
    "*": 5, "/": 5, "%": 5,
}
_UNARY_PREC = 6
_POSTFIX_PREC = 7


def pprint_expr(expr: Expr, prec: int = 0) -> str:
    """Render an expression, parenthesizing against context ``prec``."""
    text, my_prec = _render(expr)
    if my_prec < prec:
        return f"({text})"
    return text


def _render(expr: Expr) -> tuple[str, int]:
    if isinstance(expr, IntLit):
        return str(expr.value), _POSTFIX_PREC
    if isinstance(expr, DoubleLit):
        v = repr(expr.value)
        if "." not in v and "e" not in v and "E" not in v and "inf" not in v \
                and "nan" not in v:
            v += ".0"
        return v, _POSTFIX_PREC
    if isinstance(expr, BoolLit):
        return ("true" if expr.value else "false"), _POSTFIX_PREC
    if isinstance(expr, Var):
        return expr.name, _POSTFIX_PREC
    if isinstance(expr, Dot):
        return ".", _POSTFIX_PREC
    if isinstance(expr, VectorLit):
        inner = ", ".join(pprint_expr(e) for e in expr.elements)
        return f"[{inner}]", _POSTFIX_PREC
    if isinstance(expr, UnOp):
        operand = pprint_expr(expr.operand, _UNARY_PREC)
        return f"{expr.op}{operand}", _UNARY_PREC
    if isinstance(expr, BinOp):
        p = _PREC[expr.op]
        # Left-associative: the right child needs one more level; the
        # comparisons are non-associative, so both children do.
        left_prec = p + 1 if p == 3 else p
        left = pprint_expr(expr.left, left_prec)
        right = pprint_expr(expr.right, p + 1)
        return f"{left} {expr.op} {right}", p
    if isinstance(expr, Call):
        args = ", ".join(pprint_expr(a) for a in expr.args)
        return f"{expr.name}({args})", _POSTFIX_PREC
    if isinstance(expr, Select):
        array = pprint_expr(expr.array, _POSTFIX_PREC)
        return f"{array}[{pprint_expr(expr.index)}]", _POSTFIX_PREC
    if isinstance(expr, WithLoop):
        gen = _render_generator(expr.generator)
        op = _render_operation(expr.operation)
        return f"with ({gen}) {op}", 0
    raise TypeError(f"cannot pretty-print {type(expr).__name__}")


def _render_generator(gen: Generator) -> str:
    lo = pprint_expr(gen.lower)
    hi = pprint_expr(gen.upper)
    lrel = "<=" if gen.lower_inclusive else "<"
    urel = "<=" if gen.upper_inclusive else "<"
    text = f"{lo} {lrel} {gen.var} {urel} {hi}"
    if gen.step is not None:
        text += f" step {pprint_expr(gen.step)}"
    if gen.width is not None:
        text += f" width {pprint_expr(gen.width)}"
    return text


def _render_operation(op) -> str:
    if isinstance(op, GenarrayOp):
        return f"genarray({pprint_expr(op.shape)}, {pprint_expr(op.body)})"
    if isinstance(op, ModarrayOp):
        return f"modarray({pprint_expr(op.array)}, {pprint_expr(op.body)})"
    if isinstance(op, FoldOp):
        return (f"fold({op.fun}, {pprint_expr(op.neutral)}, "
                f"{pprint_expr(op.body)})")
    raise TypeError(f"cannot pretty-print {type(op).__name__}")


def pprint_stmt(stmt: Stmt, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(stmt, Assign):
        return f"{pad}{stmt.target} = {pprint_expr(stmt.value)};"
    if isinstance(stmt, Return):
        return f"{pad}return {pprint_expr(stmt.value)};"
    if isinstance(stmt, ExprStmt):
        return f"{pad}{pprint_expr(stmt.expr)};"
    if isinstance(stmt, Block):
        inner = "\n".join(pprint_stmt(s, indent + 1) for s in stmt.statements)
        return f"{pad}{{\n{inner}\n{pad}}}"
    if isinstance(stmt, If):
        out = f"{pad}if ({pprint_expr(stmt.cond)})\n"
        out += pprint_stmt(stmt.then, indent)
        if stmt.orelse is not None:
            out += f"\n{pad}else\n" + pprint_stmt(stmt.orelse, indent)
        return out
    if isinstance(stmt, For):
        init = pprint_stmt(stmt.init, 0)[:-1]  # strip ';'
        update = pprint_stmt(stmt.update, 0)[:-1]
        head = (f"{pad}for ({init}; {pprint_expr(stmt.cond)}; {update})\n")
        return head + pprint_stmt(stmt.body, indent)
    if isinstance(stmt, While):
        return (f"{pad}while ({pprint_expr(stmt.cond)})\n"
                + pprint_stmt(stmt.body, indent))
    if isinstance(stmt, DoWhile):
        return (f"{pad}do\n" + pprint_stmt(stmt.body, indent)
                + f"\n{pad}while ({pprint_expr(stmt.cond)});")
    raise TypeError(f"cannot pretty-print {type(stmt).__name__}")


def pprint_fundef(fun: FunDef) -> str:
    params = ", ".join(f"{p.type} {p.name}" for p in fun.params)
    inline = "inline " if fun.inline else ""
    head = f"{inline}{fun.return_type} {fun.name}({params})"
    return head + "\n" + pprint_stmt(fun.body, 0)


def pprint_program(program: Program) -> str:
    return "\n\n".join(pprint_fundef(f) for f in program.functions) + "\n"
