"""Calibrated SMP simulator standing in for the paper's 12-CPU SUN
Ultra Enterprise 4000 (see DESIGN.md for the substitution rationale)."""

from .calibration import (
    F77_ANCHOR_SECONDS_A,
    KIND_WEIGHTS,
    PAPER,
    PaperTargets,
    get_profile,
    profiles,
    sequential_paper_times,
)
from .costmodel import MachineProfile, op_time_seconds
from .distmem import DistMemMachine, distmem_speedups, simulate_distmem
from .related_work import related_profiles, related_work_table
from .smp import SimResult, simulate, simulate_class, speedup_curve

__all__ = [
    "MachineProfile",
    "op_time_seconds",
    "SimResult",
    "simulate",
    "simulate_class",
    "speedup_curve",
    "profiles",
    "get_profile",
    "PAPER",
    "PaperTargets",
    "KIND_WEIGHTS",
    "F77_ANCHOR_SECONDS_A",
    "sequential_paper_times",
    "DistMemMachine",
    "distmem_speedups",
    "simulate_distmem",
    "related_profiles",
    "related_work_table",
]
