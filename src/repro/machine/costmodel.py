"""Cost model of one MG implementation on the simulated SMP.

The paper's testbed (12-CPU SUN Ultra Enterprise 4000) is modelled by a
small set of per-implementation parameters; the simulator
(:mod:`repro.machine.smp`) replays a real operation trace against them.
The model's structure encodes the paper's own §5 analysis:

* stencil/transfer work scales with the grid's point count (per-point
  cost per operation kind, reflecting each style's arithmetic),
* every operation pays a constant overhead — for SAC this is dominated
  by dynamic memory management, which is *"invariant against grid
  sizes"* and therefore governs the small-grid end of the V-cycle,
* a parallel operation pays a fork/join cost growing with the number of
  processors, and grids below a threshold run sequentially,
* the border exchange is surface work (``points**(2/3)``), not volume
  work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.trace import TraceOp

__all__ = ["MachineProfile", "op_time_seconds", "KIND_IS_SURFACE"]

#: Op kinds whose cost scales with the grid surface, not its volume.
KIND_IS_SURFACE = frozenset({"comm3"})


@dataclass(frozen=True)
class MachineProfile:
    """Calibrated cost parameters of one implementation style."""

    name: str
    label: str
    #: Per-point cost in nanoseconds, by trace op kind.  ``comm3`` is
    #: interpreted per *surface* point (6 * points**(2/3)).
    per_point_ns: dict[str, float]
    #: Fixed overhead per operation in microseconds (loop startup and,
    #: for SAC, dynamic memory management).
    op_overhead_us: float
    #: Trace op kinds this implementation executes in parallel.
    parallel_kinds: frozenset[str]
    #: Fork/join cost of one parallel region: ``base + per_proc * P`` µs.
    fork_base_us: float
    fork_per_proc_us: float
    #: Operations on grids smaller than this run sequentially.
    min_parallel_points: int = 1
    #: Extra per-point cost (ns) on grids with at least
    #: ``large_grid_threshold`` points — models cache-capacity effects
    #: (the RWCP C port degrades relative to Fortran as grids grow,
    #: paper §5).
    large_grid_penalty_ns: float = 0.0
    large_grid_threshold: int = 1 << 20
    #: Fraction of each parallel operation that stays serial no matter
    #: how many CPUs join in — bus saturation and per-loop serial
    #: sections on the Gigaplane-bus Enterprise 4000.
    unparallelizable_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.op_overhead_us < 0 or self.fork_base_us < 0 \
                or self.fork_per_proc_us < 0:
            raise ValueError("cost parameters must be non-negative")
        if self.min_parallel_points < 1:
            raise ValueError("min_parallel_points must be >= 1")
        if self.large_grid_penalty_ns < 0:
            raise ValueError("cost parameters must be non-negative")
        if not 0.0 <= self.unparallelizable_fraction < 1.0:
            raise ValueError("unparallelizable_fraction must be in [0, 1)")


def _work_seconds(profile: MachineProfile, op: TraceOp) -> float:
    ns = profile.per_point_ns.get(op.kind)
    if ns is None:
        return 0.0
    if op.kind in KIND_IS_SURFACE:
        effective_points = 6.0 * op.points ** (2.0 / 3.0)
    else:
        effective_points = float(op.points)
    if (
        profile.large_grid_penalty_ns
        and op.kind not in KIND_IS_SURFACE
        and op.points >= profile.large_grid_threshold
    ):
        ns = ns + profile.large_grid_penalty_ns
    return effective_points * ns * 1e-9


def op_time_seconds(profile: MachineProfile, op: TraceOp,
                    nprocs: int = 1) -> tuple[float, bool]:
    """Simulated wall-clock seconds of one operation.

    Returns ``(seconds, ran_parallel)``.
    """
    work = _work_seconds(profile, op)
    overhead = profile.op_overhead_us * 1e-6
    parallel = (
        nprocs > 1
        and op.kind in profile.parallel_kinds
        and op.points >= profile.min_parallel_points
    )
    if parallel:
        fork = (profile.fork_base_us
                + profile.fork_per_proc_us * nprocs) * 1e-6
        beta = profile.unparallelizable_fraction
        return work * (beta + (1.0 - beta) / nprocs) + fork + overhead, True
    return work + overhead, False
