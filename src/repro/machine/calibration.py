"""Calibrated machine profiles for the paper's three implementations.

The paper reports *relative* performance only (runtime ratios in Fig. 11
and speedups in Figs. 12/13); no absolute seconds are given.  The
calibration therefore

1. anchors the Fortran-77 class-A sequential time at an assumed
   :data:`F77_ANCHOR_SECONDS_A` (the order of magnitude of NPB 2.3 MG
   class A on a ~400 MHz UltraSPARC-II; only ratios matter downstream),
2. *derives* the sequential constants — per-point scale and per-op
   overhead per implementation — by solving the 2x2 linear systems that
   make the simulator reproduce the paper's four sequential ratios
   exactly (F77 beats SAC by 29.6 %/23.0 % on W/A; SAC beats C by
   14.2 %/22.5 %), and
3. freezes the parallel constants (fork/join costs, sequential-grid
   threshold, unparallelizable fraction, parallelized op kinds), fitted
   once by grid search against the Fig. 12 speedups at ten processors
   (F77 2.8/4.0, SAC 5.3/7.6, OpenMP 8.0/9.0).

The resulting model also reproduces the paper's qualitative Fig. 13
claims without having been fitted to them: SAC passes auto-parallelized
Fortran at four processors, and stays ahead of OpenMP on class A within
the investigated range while OpenMP overtakes on class W
(tested in ``tests/machine``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.trace import synthesize_mg_trace

from .costmodel import KIND_IS_SURFACE, MachineProfile

__all__ = [
    "KIND_WEIGHTS",
    "F77_ANCHOR_SECONDS_A",
    "PaperTargets",
    "PAPER",
    "profiles",
    "get_profile",
    "sequential_paper_times",
]

#: Relative per-point arithmetic weight of each op kind (flops-flavoured;
#: ``comm3`` is per surface point).
KIND_WEIGHTS: dict[str, float] = {
    "resid": 16.0,
    "psinv": 17.0,
    "rprj3": 15.0,
    "interp": 4.0,
    "zero3": 1.0,
    "norm2u3": 3.0,
    "comm3": 4.0,
}

#: Assumed absolute anchor: serial F77 class A seconds on the testbed.
F77_ANCHOR_SECONDS_A = 100.0

#: Cache-capacity threshold for the C port's large-grid penalty.
LARGE_GRID_THRESHOLD = 1 << 20


@dataclass(frozen=True)
class PaperTargets:
    """The §5 numbers the model is calibrated against / validated on."""

    # Fig. 11 — sequential ratios.
    f77_over_sac: dict[str, float]
    sac_over_c: dict[str, float]
    # Fig. 12 — speedups at 10 CPUs relative to own sequential time.
    speedup_10: dict[str, dict[str, float]]
    # Fig. 13 — qualitative claims.
    sac_passes_f77_at: int = 4
    processors: tuple[int, ...] = (1, 2, 4, 6, 8, 10)


PAPER = PaperTargets(
    f77_over_sac={"W": 1.296, "A": 1.230},
    sac_over_c={"W": 1.142, "A": 1.225},
    speedup_10={
        "f77": {"W": 2.8, "A": 4.0},
        "sac": {"W": 5.3, "A": 7.6},
        "omp": {"W": 8.0, "A": 9.0},
    },
)

#: Op kinds each implementation parallelizes: the Fortran auto-
#: parallelizer only handles the two simple relaxation loop nests;
#: OpenMP (30 hand directives) and SAC (every WITH-loop) cover all.
_F77_PARALLEL = frozenset({"resid", "psinv"})
_ALL_PARALLEL = frozenset(
    {"resid", "psinv", "rprj3", "interp", "zero3", "comm3", "norm2u3"}
)


def _trace_terms(nx: int, nit: int) -> tuple[float, int, float]:
    """(volume work at unit scale [s], op count, large-grid volume [Gpt])."""
    vol = 0.0
    big = 0.0
    n = 0
    for op in synthesize_mg_trace(nx, nit):
        w = KIND_WEIGHTS.get(op.kind, 0.0)
        pts = 6.0 * op.points ** (2.0 / 3.0) if op.kind in KIND_IS_SURFACE \
            else float(op.points)
        vol += pts * w * 1e-9
        if op.kind not in KIND_IS_SURFACE and op.points >= LARGE_GRID_THRESHOLD:
            big += op.points * 1e-9
        n += 1
    return vol, n, big


@lru_cache(maxsize=1)
def _sequential_fit() -> dict[str, tuple[float, float, float]]:
    """Derive (scale, overhead_us, large_grid_penalty_ns) per style."""
    vol_w, n_w, _ = _trace_terms(64, 40)
    vol_a, n_a, big_a = _trace_terms(256, 4)

    ov_f = 5e-6  # static layout: negligible per-op cost
    scale_f = (F77_ANCHOR_SECONDS_A - ov_f * n_a) / vol_a
    t_f_w = scale_f * vol_w + ov_f * n_w

    # SAC: per-point scale + per-op (memory management) overhead solve
    # the two Fig. 11 ratios exactly.
    m = np.array([[vol_w, n_w], [vol_a, n_a]])
    rhs = np.array([
        PAPER.f77_over_sac["W"] * t_f_w,
        PAPER.f77_over_sac["A"] * F77_ANCHOR_SECONDS_A,
    ])
    scale_s, ov_s = np.linalg.solve(m, rhs)
    t_s_w = scale_s * vol_w + ov_s * n_w
    t_s_a = scale_s * vol_a + ov_s * n_a

    # C: almost-static memory (small fixed overhead); its growing deficit
    # on the large class is a cache-capacity effect, modelled as a
    # per-point penalty on grids above the threshold.
    ov_c = 30e-6
    scale_c = (PAPER.sac_over_c["W"] * t_s_w - ov_c * n_w) / vol_w
    pen_c = (
        PAPER.sac_over_c["A"] * t_s_a - (scale_c * vol_a + ov_c * n_a)
    ) / big_a

    return {
        "f77": (scale_f, ov_f * 1e6, 0.0),
        "sac": (float(scale_s), float(ov_s) * 1e6, 0.0),
        "omp": (float(scale_c), ov_c * 1e6, float(pen_c)),
    }


#: Frozen parallel constants (grid-search fit against Fig. 12 at P=10):
#: (parallel kinds, fork_base_us, fork_per_proc_us, min_parallel_points,
#:  unparallelizable_fraction).
_PARALLEL_CONSTANTS = {
    "f77": (_F77_PARALLEL, 3000.0, 100.0, 262144, 0.05),
    "sac": (_ALL_PARALLEL, 50.0, 25.0, 4096, 0.03),
    "omp": (_ALL_PARALLEL, 200.0, 5.0, 512, 0.01),
}

_LABELS = {"f77": "Fortran-77", "sac": "SAC", "omp": "C / OpenMP"}


@lru_cache(maxsize=1)
def profiles() -> dict[str, MachineProfile]:
    """The three calibrated machine profiles, keyed by style name."""
    seq = _sequential_fit()
    out: dict[str, MachineProfile] = {}
    for name, (scale, ov_us, pen) in seq.items():
        kinds, fb, fp, thr, beta = _PARALLEL_CONSTANTS[name]
        out[name] = MachineProfile(
            name=name,
            label=_LABELS[name],
            per_point_ns={k: w * scale for k, w in KIND_WEIGHTS.items()},
            op_overhead_us=ov_us,
            parallel_kinds=kinds,
            fork_base_us=fb,
            fork_per_proc_us=fp,
            min_parallel_points=thr,
            large_grid_penalty_ns=pen,
            large_grid_threshold=LARGE_GRID_THRESHOLD,
            unparallelizable_fraction=beta,
        )
    return out


def get_profile(name: str) -> MachineProfile:
    try:
        return profiles()[name]
    except KeyError:
        raise KeyError(
            f"unknown machine profile {name!r}; known: {sorted(profiles())}"
        ) from None


def sequential_paper_times() -> dict[str, dict[str, float]]:
    """Simulated single-CPU seconds per implementation and class."""
    from .smp import simulate_class

    out: dict[str, dict[str, float]] = {}
    for name, prof in profiles().items():
        out[name] = {
            "W": simulate_class(64, 40, prof, 1).seconds,
            "A": simulate_class(256, 4, prof, 1).seconds,
        }
    return out
