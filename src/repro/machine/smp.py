"""Trace-driven SMP simulator.

Replays an MG operation trace (real or synthesized — the V-cycle's op
sequence is fully determined by ``(nx, nit)``) against a calibrated
:class:`~repro.machine.costmodel.MachineProfile` and reports simulated
wall-clock time with per-kind and per-level breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.trace import Trace, synthesize_mg_trace

from .costmodel import MachineProfile, op_time_seconds

__all__ = ["SimResult", "simulate", "simulate_class", "speedup_curve"]


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    profile: MachineProfile
    nprocs: int
    seconds: float
    seconds_by_kind: dict[str, float] = field(default_factory=dict)
    seconds_by_level: dict[int, float] = field(default_factory=dict)
    parallel_ops: int = 0
    serial_ops: int = 0

    @property
    def total_ops(self) -> int:
        return self.parallel_ops + self.serial_ops

    def speedup_against(self, sequential: "SimResult") -> float:
        return sequential.seconds / self.seconds


def simulate(trace: Trace, profile: MachineProfile,
             nprocs: int = 1) -> SimResult:
    """Simulate one run of the traced operations on ``nprocs`` CPUs."""
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    result = SimResult(profile, nprocs, 0.0)
    for op in trace:
        t, parallel = op_time_seconds(profile, op, nprocs)
        result.seconds += t
        result.seconds_by_kind[op.kind] = (
            result.seconds_by_kind.get(op.kind, 0.0) + t
        )
        result.seconds_by_level[op.level] = (
            result.seconds_by_level.get(op.level, 0.0) + t
        )
        if parallel:
            result.parallel_ops += 1
        else:
            result.serial_ops += 1
    return result


def simulate_class(nx: int, nit: int, profile: MachineProfile,
                   nprocs: int = 1) -> SimResult:
    """Synthesize the MG trace for ``(nx, nit)`` and simulate it."""
    return simulate(synthesize_mg_trace(nx, nit), profile, nprocs)


def speedup_curve(nx: int, nit: int, profile: MachineProfile,
                  procs: list[int]) -> dict[int, float]:
    """Speedups relative to the profile's own single-CPU time."""
    trace = synthesize_mg_trace(nx, nit)
    base = simulate(trace, profile, 1).seconds
    return {p: base / simulate(trace, profile, p).seconds for p in procs}
