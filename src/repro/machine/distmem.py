"""Distributed-memory (MPI-style) machine model — the paper's §7 wish.

The paper's future work includes "a direct comparison with the MPI-based
parallel reference implementation of NAS-MG".  This module provides the
model needed for that comparison: the NPB 2.x MPI MG decomposes each
grid level across a 3-D processor mesh; every stencil operation then
costs its share of the volume work plus a *halo exchange* — six face
messages with latency and bandwidth terms — and the coarse V-cycle
levels degenerate until fewer points than processors remain.

The model reuses the calibrated per-point costs of the Fortran profile
(same arithmetic, different parallelization substrate), adding the
standard alpha-beta communication model of a 2002-era interconnect.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.trace import Trace, TraceOp, synthesize_mg_trace

from .calibration import profiles

__all__ = ["DistMemMachine", "simulate_distmem", "distmem_speedups"]


@dataclass(frozen=True)
class DistMemMachine:
    """Alpha-beta cluster model on a 3-D processor mesh."""

    #: Per-point compute scale, by trace op kind (ns), e.g. the F77 map.
    per_point_ns: dict[str, float]
    #: Message latency (µs) and per-double transfer time (ns).
    latency_us: float = 25.0
    ns_per_double: float = 8.0   # ~1 GB/s links
    #: Per-operation fixed overhead (µs).
    op_overhead_us: float = 5.0

    def mesh(self, nprocs: int) -> tuple[int, int, int]:
        """Factor ``nprocs`` into the most cubic 3-D mesh."""
        best = (nprocs, 1, 1)
        best_score = None
        for px in range(1, nprocs + 1):
            if nprocs % px:
                continue
            rest = nprocs // px
            for py in range(1, rest + 1):
                if rest % py:
                    continue
                pz = rest // py
                score = max(px, py, pz) / min(px, py, pz)
                if best_score is None or score < best_score:
                    best_score = score
                    best = (px, py, pz)
        return best

    def op_seconds(self, op: TraceOp, mesh: tuple[int, int, int]) -> float:
        n = round(op.points ** (1.0 / 3.0))
        px, py, pz = mesh
        nprocs = px * py * pz
        ns = self.per_point_ns.get(op.kind, 0.0)
        overhead = self.op_overhead_us * 1e-6
        if op.kind == "comm3":
            # The halo exchange itself: six faces of the local block.
            lx, ly, lz = max(1, n // px), max(1, n // py), max(1, n // pz)
            faces = 2 * (lx * ly + ly * lz + lx * lz)
            msgs = sum(2 for p in (px, py, pz) if p > 1) or 0
            return (
                msgs * self.latency_us * 1e-6
                + faces * self.ns_per_double * 1e-9
                + overhead
            )
        # Volume work on the local share; a level with fewer points than
        # processors leaves most ranks idle but still pays the critical
        # path of one point per rank column.
        local_points = max(op.points // nprocs, 1)
        return local_points * ns * 1e-9 + overhead


def simulate_distmem(trace: Trace, machine: DistMemMachine,
                     nprocs: int) -> float:
    """Simulated seconds of a traced run on ``nprocs`` ranks."""
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    mesh = machine.mesh(nprocs)
    return sum(machine.op_seconds(op, mesh) for op in trace)


def default_machine() -> DistMemMachine:
    """The F77+MPI machine: Fortran arithmetic on an alpha-beta cluster."""
    f77 = profiles()["f77"]
    return DistMemMachine(per_point_ns=dict(f77.per_point_ns))


def distmem_speedups(nx: int, nit: int,
                     procs: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
                     machine: DistMemMachine | None = None) -> dict[int, float]:
    """Speedup curve of the MPI-style reference on the cluster model."""
    m = machine or default_machine()
    trace = synthesize_mg_trace(nx, nit)
    base = simulate_distmem(trace, m, 1)
    return {p: base / simulate_distmem(trace, m, p) for p in procs}
