"""Related-work context models (paper §6).

The paper situates SAC against two other high-level approaches via
published NAS-MG studies:

* **HPF** [11, 12]: outperformed by the Fortran-77+MPI reference by a
  factor of *nearly three* on one processor and a factor of *eight* at
  32 processors.
* **ZPL** [8]: maximum speedup of ~5 using 14 processors on a comparable
  Sun Enterprise SMP (classes B/C).

These are *illustrative* profiles derived from exactly those three
sentences (documented assumptions below) — enough to regenerate the §6
comparison table alongside the calibrated Fig. 11–13 profiles, clearly
separated from them.

Assumptions:

* F77+MPI scales like a well-tuned message-passing code: a small serial
  fraction plus a per-processor communication term, normalized to the
  same sequential anchor as the Fig. 11 Fortran profile.
* HPF's single-CPU penalty is a pure per-point scale (x3); its widening
  gap at 32 CPUs (x8) is expressed through a larger unparallelizable
  fraction, solved from the two published ratios.
* ZPL's sequential base is taken slightly better than SAC's (the [8]
  study found the *then-current* SAC slightly inferior to ZPL); its
  speedup saturates at ~5 by 14 CPUs, giving its serial fraction.
"""

from __future__ import annotations

from functools import lru_cache

from .calibration import KIND_WEIGHTS, _sequential_fit
from .costmodel import MachineProfile
from .smp import simulate_class

__all__ = ["related_profiles", "related_work_table"]

_ALL_PARALLEL = frozenset(
    {"resid", "psinv", "rprj3", "interp", "zero3", "comm3", "norm2u3"}
)


def _solve_beta(target_speedup: float, procs: int) -> float:
    """Serial fraction giving ``target_speedup`` at ``procs`` CPUs under
    Amdahl: 1/(b + (1-b)/P) = S."""
    return (1.0 / target_speedup - 1.0 / procs) / (1.0 - 1.0 / procs)


@lru_cache(maxsize=1)
def related_profiles() -> dict[str, MachineProfile]:
    """HPF, ZPL and F77+MPI profiles for the §6 comparison."""
    seq = _sequential_fit()
    scale_f = seq["f77"][0]
    scale_s = seq["sac"][0]

    # F77+MPI: near-linear scaling with light per-processor overhead.
    mpi = MachineProfile(
        name="f77mpi",
        label="Fortran-77 + MPI",
        per_point_ns={k: w * scale_f for k, w in KIND_WEIGHTS.items()},
        op_overhead_us=10.0,
        parallel_kinds=_ALL_PARALLEL,
        fork_base_us=100.0,
        fork_per_proc_us=15.0,
        min_parallel_points=512,
        unparallelizable_fraction=0.005,
    )

    # HPF: x3 sequential penalty; serial fraction solved so the gap to
    # MPI reaches x8 at 32 CPUs (MPI itself scales per the profile
    # above, ~x23 at 32 CPUs; HPF must land near x23*3/8 ~ x8.6).
    mpi_s32 = (
        simulate_class(256, 4, mpi, 1).seconds
        / simulate_class(256, 4, mpi, 32).seconds
    )
    hpf_target_speedup = mpi_s32 * 3.0 / 8.0
    hpf = MachineProfile(
        name="hpf",
        label="HPF",
        per_point_ns={k: w * 3.0 * scale_f for k, w in KIND_WEIGHTS.items()},
        op_overhead_us=50.0,
        parallel_kinds=_ALL_PARALLEL,
        fork_base_us=300.0,
        fork_per_proc_us=30.0,
        min_parallel_points=512,
        unparallelizable_fraction=max(
            0.0, _solve_beta(hpf_target_speedup, 32)
        ),
    )

    # ZPL: sequential base a touch better than SAC's of the era; speedup
    # saturating at ~5 by 14 CPUs.
    zpl = MachineProfile(
        name="zpl",
        label="ZPL",
        per_point_ns={k: w * 0.95 * scale_s for k, w in KIND_WEIGHTS.items()},
        op_overhead_us=80.0,
        parallel_kinds=_ALL_PARALLEL,
        fork_base_us=200.0,
        fork_per_proc_us=20.0,
        min_parallel_points=2048,
        unparallelizable_fraction=_solve_beta(5.0, 14),
    )
    return {"f77mpi": mpi, "hpf": hpf, "zpl": zpl}


def related_work_table() -> dict:
    """Regenerate the §6 claims from the illustrative profiles."""
    profs = related_profiles()
    mpi, hpf, zpl = profs["f77mpi"], profs["hpf"], profs["zpl"]

    t_mpi_1 = simulate_class(256, 4, mpi, 1).seconds
    t_hpf_1 = simulate_class(256, 4, hpf, 1).seconds
    t_mpi_32 = simulate_class(256, 4, mpi, 32).seconds
    t_hpf_32 = simulate_class(256, 4, hpf, 32).seconds
    zpl_speedups = {
        p: simulate_class(256, 20, zpl, 1).seconds
        / simulate_class(256, 20, zpl, p).seconds
        for p in (1, 2, 4, 8, 14)
    }
    return {
        "hpf_vs_mpi_seq": t_hpf_1 / t_mpi_1,
        "hpf_vs_mpi_32": t_hpf_32 / t_mpi_32,
        "zpl_speedups_class_b": zpl_speedups,
        "paper_claims": {
            "hpf_vs_mpi_seq": 3.0,
            "hpf_vs_mpi_32": 8.0,
            "zpl_max_speedup_14": 5.0,
        },
    }
